""":class:`MicroBatcher` — cross-stream micro-batching for serve paths.

The continuous-batching pattern from inference serving, applied to LFSR
work: many concurrent connections each contribute small operations
(open / feed / finalize), and pushing every one through the pipeline
executor individually pays one loop→thread→loop handoff per op *and*
runs the engine one stream at a time — a ``finalize`` pump whose packed
matrix product advances a single stream costs the same as one advancing
thirty-two.  That per-op dispatch-plus-narrow-datapath tax, not GF(2)
math, is what caps the serial serve path near 10³ msgs/s while the
batch engines do 10⁴–10⁵ in-process.  The fix is the software analogue
of the paper's wide datapath: coalesce B queued ops into **one**
executor call whose runner regroups them into wide engine calls (one
``pump`` for every feed, one ``finalize_many`` for every digest), so
the handoff amortizes to ``1/B`` per op and the packed kernels see B
streams' worth of work at once.

Mechanics:

* :meth:`MicroBatcher.submit` enqueues ``(key, op)`` on a bounded
  submission queue and returns the op's result.  Ops are opaque to the
  batcher — the runner registered for ``key`` interprets them (the
  serve layer submits tagged tuples; :func:`run_ops` handles plain
  callables).  The queue bound is the natural backpressure surface —
  :attr:`depth` feeds the server's watermarks.
* A drain task collects up to ``max_batch`` ops per round.  With
  ``linger_s == 0`` (the default) a round dispatches as soon as the
  queue is momentarily empty — **continuous batching**: while a round
  executes on the executor thread, the event loop stacks up the next
  one, so batch occupancy tracks offered load by itself and a single
  caller sees no added latency.  A positive linger sleeps once, up to
  that long, before the final gather — but only when at least
  ``linger_min_depth`` ops are already collected (the planner's
  crossover occupancy — below it the batcher flushes eagerly, keeping
  a lone client at serial-path latency).
* Ops are grouped by ``key`` (one key per compiled spec) and each
  group runs through its registered runner inside one executor call;
  per-stream ordering is preserved because a caller awaits each result
  before submitting the next op for that stream, while cross-stream
  ordering is deliberately relaxed — a runner may reorder ops for
  *different* streams to pack them into wide kernel calls.
* Exceptions are contained per op: a runner may return an exception
  instance in a result slot (or raise, failing its whole group) and
  only the affected futures see it — one bad stream never poisons a
  batch.

Ordering contract in one sentence: **ops for one stream execute in
submission order; ops for different streams may reorder within and
across rounds.**  See ``docs/SERVE.md`` for the serving walkthrough and
``docs/OBSERVABILITY.md`` for the ``serve_batch_*`` metric family this
module publishes.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.telemetry import bind_families, default_flight_recorder, default_registry


class BatcherClosed(ValidationError):
    """Raised by :meth:`MicroBatcher.submit` once the batcher stopped
    accepting work (closing or never started).  A distinct type so
    callers holding a serial fallback path can catch exactly this and
    reroute, without swallowing validation errors raised by the op
    itself."""


#: Default cap on ops coalesced into one executor round.
DEFAULT_MAX_BATCH = 64
#: Default submission-queue bound (acts as the backpressure reservoir).
DEFAULT_MAX_QUEUE = 1024

# Bound lazily (see repro.telemetry.bind_families) so a registry swapped
# in after import is still observed.
_METRICS = bind_families(lambda reg: {
    "occupancy": reg.histogram(
        "serve_batch_occupancy", "Ops coalesced per micro-batch round",
        buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
    ),
    "linger": reg.histogram(
        "serve_batch_linger_seconds",
        "Time from first op collected to round dispatch",
        buckets=(1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2),
    ),
    "queue_depth": reg.gauge(
        "serve_batch_queue_depth", "Ops waiting in the micro-batch queue",
    ),
    "batches": reg.counter(
        "serve_batches_total", "Micro-batch rounds dispatched",
    ),
    "batched_ops": reg.counter(
        "serve_batched_ops_total", "Ops executed inside micro-batch rounds",
    ),
})

#: A batched operation: opaque to the batcher, interpreted by the
#: runner registered for its key (a callable for :func:`run_ops`).
BatchOp = object
#: A group runner: executes its ops (reordering across streams is
#: allowed, see the module docstring), returns one result per op — an
#: exception instance in a slot fails just that op's future.
GroupRunner = Callable[[Sequence[BatchOp]], Sequence[object]]


def run_ops(ops: Sequence[Callable[[], object]]) -> List[object]:
    """The generic group runner: apply each callable, containing failures.

    Runs every op in submission order; an op that raises contributes its
    exception instance as that slot's result (scattered to exactly that
    op's future) instead of aborting the rest of the group.  Workload-
    aware runners (the serve layer's) beat this by regrouping ops into
    wide engine calls — this one is the drop-in for opaque thunks.
    """
    results: List[object] = []
    for op in ops:
        try:
            results.append(op())
        except Exception as exc:  # noqa: BLE001 — contained per op
            results.append(exc)
    return results


@dataclass
class MicroBatchStats:
    """Deterministic counters mirrored into server stats.

    ``occupancy_sum / batches`` is the mean batch occupancy; the full
    distribution lives in the ``serve_batch_occupancy`` histogram.
    """

    batches: int = 0
    ops: int = 0
    max_occupancy: int = 0
    empty_flushes: int = 0
    occupancy_sum: int = field(default=0, repr=False)

    @property
    def mean_occupancy(self) -> float:
        """Mean ops per dispatched round (0.0 before the first round)."""
        return self.occupancy_sum / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        """Flat scalar summary for the ``stats`` verb and flight dumps."""
        return {
            "batches": self.batches,
            "ops": self.ops,
            "max_occupancy": self.max_occupancy,
            "mean_occupancy": round(self.mean_occupancy, 3),
            "empty_flushes": self.empty_flushes,
        }


class MicroBatcher:
    """Coalesce ops from many submitters into single executor rounds.

    ``executor`` is where rounds run — for the serve path, the server's
    single pipeline thread, so batched and serial ops share one total
    order.  Register a :data:`GroupRunner` per key with :meth:`register`
    before submitting under that key; mixed-key rounds execute each
    key's group separately (grouped by compiled spec) inside the same
    executor call.

    Lifecycle: :meth:`start` → ``await submit(...)`` from any number of
    tasks → :meth:`aclose` (flushes the queue, then stops — an empty
    flush is legal and counted).

    The submission queue is a plain deque plus one waker event rather
    than an :class:`asyncio.Queue` — at 10⁴–10⁵ ops/s the queue's lock
    and waiter machinery would cost more than the executor handoff the
    batcher exists to amortize.
    """

    def __init__(
        self,
        executor: Executor,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        linger_s: float = 0.0,
        linger_min_depth: int = 2,
        max_queue: int = DEFAULT_MAX_QUEUE,
    ):
        if max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        if linger_s < 0:
            raise ValidationError(f"linger_s must be >= 0, got {linger_s}")
        if max_queue < max_batch:
            raise ValidationError(
                f"max_queue ({max_queue}) must be >= max_batch ({max_batch})"
            )
        self._executor = executor
        self.max_batch = max_batch
        self.linger_s = linger_s
        self.linger_min_depth = max(1, linger_min_depth)
        self.max_queue = max_queue
        self._runners: Dict[object, GroupRunner] = {}
        self._pending: Deque[Tuple[object, BatchOp, asyncio.Future]] = deque()
        self._wake = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._closing = False
        self._dispatching = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._depth_waiters: List[Tuple[int, asyncio.Future]] = []
        self._space_waiters: List[asyncio.Future] = []
        self.stats = MicroBatchStats()

    # ------------------------------------------------------------------
    def register(self, key: object, runner: GroupRunner) -> None:
        """Bind ``runner`` to ``key`` (one key per compiled spec)."""
        self._runners[key] = runner

    @property
    def depth(self) -> int:
        """Ops currently waiting in the submission queue."""
        return len(self._pending)

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`aclose`."""
        return self._task is not None and not self._task.done()

    @property
    def idle(self) -> bool:
        """True when no op is queued and no round is executing.

        The eager-flush rule taken one step further: a submitter that
        finds the batcher idle has nothing to coalesce with, so a host
        may run that op directly on the shared executor and skip the
        batcher handoff entirely — serial-path latency for a lone
        caller, with ordering intact because the executor serializes
        direct calls and rounds into one total order.  Hosts that
        bypass must track their own in-flight direct ops (see
        ``ReproServer._call_op``): two concurrent submitters both
        observing ``idle`` is exactly the moment batching starts to
        pay.
        """
        return not self._pending and not self._dispatching

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the drain task (call from the event loop)."""
        if self._task is not None:
            raise ValidationError("MicroBatcher is already started")
        self._closing = False
        self._task = asyncio.get_running_loop().create_task(self._drain_loop())
        recorder = default_flight_recorder()
        if recorder.enabled:
            recorder.record(
                "microbatch-start",
                f"max_batch={self.max_batch} linger_s={self.linger_s}",
                keys=len(self._runners),
                max_queue=self.max_queue,
            )

    async def submit(self, key: object, op: BatchOp) -> object:
        """Enqueue one op under ``key``; returns its result (or raises).

        Awaits queue space when the bound is hit (that wait is the
        batcher-side backpressure), then awaits the op's future.  The
        submitting task must not submit a second op for the same stream
        until this one resolves — that request/response alternation is
        what makes per-stream ordering hold.
        """
        if self._task is None or self._closing:
            raise BatcherClosed("MicroBatcher is not accepting work")
        if key not in self._runners:
            raise ValidationError(f"no runner registered for key {key!r}")
        loop = asyncio.get_running_loop()
        while len(self._pending) >= self.max_queue:
            gate = loop.create_future()
            self._space_waiters.append(gate)
            await gate
            if self._task is None or self._closing:
                raise BatcherClosed("MicroBatcher is not accepting work")
        future = loop.create_future()
        self._pending.append((key, op, future))
        if not self._wake.is_set():
            self._wake.set()
        if self._idle.is_set():
            self._idle.clear()
        return await future

    async def wait_depth_below(self, threshold: int) -> None:
        """Park until queue depth falls below ``threshold`` (drain resume)."""
        if self._task is None or len(self._pending) < threshold:
            return
        future = asyncio.get_running_loop().create_future()
        self._depth_waiters.append((threshold, future))
        await future

    async def flush(self) -> None:
        """Wait until the queue is empty and no round is executing.

        Flushing an idle batcher completes immediately and counts an
        ``empty_flush`` — the drain path calls this unconditionally.
        """
        if self._task is None:
            return
        if self._idle.is_set() and not self._pending and not self._dispatching:
            self.stats.empty_flushes += 1
            return
        await self._idle.wait()

    async def aclose(self) -> None:
        """Flush outstanding work, then stop the drain task.

        Idempotent.  Ops submitted after close are refused with
        :class:`BatcherClosed`; the server falls back to its serial
        executor path at that point.
        """
        if self._task is None:
            return
        self._closing = True
        await self.flush()
        task, self._task = self._task, None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        self._release_waiters()
        recorder = default_flight_recorder()
        if recorder.enabled:
            recorder.record(
                "microbatch-stop", "batcher closed", **self.stats.to_dict()
            )

    # ------------------------------------------------------------------
    async def _drain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        pending = self._pending
        while True:
            await self._wake.wait()
            self._wake.clear()
            while pending:
                t0 = loop.time()
                batch = [
                    pending.popleft()
                    for _ in range(min(len(pending), self.max_batch))
                ]
                if (
                    self.linger_s > 0.0
                    and len(batch) < self.max_batch
                    and len(batch) >= self.linger_min_depth
                ):
                    # One straggler window, then a final greedy gather.
                    # Below the crossover occupancy the window is skipped
                    # entirely — eager flush keeps a lone client's p50 at
                    # the serial path's latency.
                    await asyncio.sleep(self.linger_s)
                    while pending and len(batch) < self.max_batch:
                        batch.append(pending.popleft())
                self._dispatching = True
                try:
                    await self._dispatch(batch, loop.time() - t0)
                finally:
                    self._dispatching = False
                self._release_waiters()
                # One event-loop tick before the next round: submitters
                # woken by this round's scatter get to enqueue their
                # next op first, so back-to-back rounds absorb them
                # instead of phase-splitting the population into
                # alternating sub-size cohorts (a lone straggler op
                # would otherwise lock half the submitters out of every
                # other round).
                await asyncio.sleep(0)
            self._idle.set()

    async def _dispatch(self, batch: list, linger: float) -> None:
        # Group by key, preserving submission order inside each group.
        groups: Dict[object, List[Tuple[BatchOp, asyncio.Future]]] = {}
        for key, op, future in batch:
            entries = groups.get(key)
            if entries is None:
                entries = groups[key] = []
            entries.append((op, future))

        def _run_round() -> Dict[object, Sequence[object]]:
            out: Dict[object, Sequence[object]] = {}
            for key, entries in groups.items():
                runner = self._runners[key]
                out[key] = runner([op for op, _ in entries])
            return out

        try:
            results = await asyncio.get_running_loop().run_in_executor(
                self._executor, _run_round
            )
        except Exception as exc:  # noqa: BLE001 — fail the whole round
            for entries in groups.values():
                for _, future in entries:
                    if not future.done():
                        future.set_exception(exc)
            return
        finally:
            self._note_round(batch, linger)
        for key, entries in groups.items():
            self._scatter(key, entries, results.get(key, ()))

    def _scatter(self, key, entries, group_results) -> None:
        """Resolve each op's future from its runner's result slot."""
        if len(group_results) != len(entries):
            exc = ValidationError(
                f"runner for key {key!r} returned {len(group_results)} "
                f"results for {len(entries)} ops"
            )
            for _, future in entries:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(entries, group_results):
            if future.done():
                continue  # submitter went away (connection dropped)
            if isinstance(result, BaseException):
                future.set_exception(result)
            else:
                future.set_result(result)

    def _note_round(self, batch: list, linger: float) -> None:
        occupancy = len(batch)
        self.stats.batches += 1
        self.stats.ops += occupancy
        self.stats.occupancy_sum += occupancy
        if occupancy > self.stats.max_occupancy:
            self.stats.max_occupancy = occupancy
        if default_registry().enabled:
            metrics = _METRICS()
            metrics["batches"].inc()
            metrics["batched_ops"].inc(occupancy)
            metrics["occupancy"].observe(occupancy)
            metrics["linger"].observe(linger)
            metrics["queue_depth"].set(len(self._pending))

    def _release_waiters(self) -> None:
        if self._space_waiters and (
            len(self._pending) < self.max_queue or self._task is None
        ):
            waiters, self._space_waiters = self._space_waiters, []
            for future in waiters:
                if not future.done():
                    future.set_result(None)
        if self._depth_waiters:
            depth = len(self._pending)
            still_waiting = []
            for threshold, future in self._depth_waiters:
                if future.done():
                    continue
                if depth < threshold or self._task is None:
                    future.set_result(None)
                else:
                    still_waiting.append((threshold, future))
            self._depth_waiters = still_waiting


async def submit_all(
    batcher: MicroBatcher, key: object, ops: Sequence[BatchOp]
) -> List[object]:
    """Submit ``ops`` concurrently under one key; gather their results.

    A convenience for tests and offline callers — each op still resolves
    through the normal round machinery, so this is the easiest way to
    force a multi-op batch deterministically.
    """
    return list(await asyncio.gather(*(
        batcher.submit(key, op) for op in ops
    )))


__all__ = [
    "BatchOp",
    "BatcherClosed",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_QUEUE",
    "GroupRunner",
    "MicroBatchStats",
    "MicroBatcher",
    "run_ops",
    "submit_all",
]
