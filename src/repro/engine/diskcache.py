"""Content-addressed persistent compile cache.

:class:`~repro.engine.cache.CompileCache` bounds *resident* compile cost,
but every fresh process — a CLI invocation, a worker in the process-pool
fallback of :mod:`repro.engine.parallel`, a CI job — still pays the full
Derby/look-ahead compilation once per spec.  :class:`DiskCompileCache`
removes that cold start: compiled artifacts are pickled under a directory
keyed by a content address (SHA-256 of the artifact kind, the spec's
canonical repr, the block factor and the cache format version), so any
process that has seen a standard before loads its matrices in
microseconds instead of recompiling them in milliseconds.

Design constraints, in order:

* **Correctness over reuse** — the content address embeds
  :data:`CACHE_VERSION`; bumping it orphans every old entry rather than
  risking a stale artifact shape.  A loaded object is *only* trusted if
  its envelope key matches the request exactly (SHA-256 collisions are
  not a practical concern, but the embedded key costs nothing to check).
* **Atomic writes** — entries are written to a same-directory temp file
  and published with :func:`os.replace`, so readers never observe a
  half-written pickle even when many workers store concurrently.
* **Corruption tolerance, not error blindness** — a truncated, garbled,
  or version-skewed entry is treated as a miss: the loader counts it on
  the ``engine_disk_cache_ops_total{result="corrupt"}`` counter, deletes
  the bad file best-effort, and lets the caller recompile.  The disk
  layer can therefore never make a result wrong, only slower.  But the
  handlers are narrowed to genuine corruption shapes: resource
  exhaustion propagates, and a store that fails with a disk-level errno
  (``ENOSPC`` / ``EDQUOT`` / ``EROFS``) re-raises instead of silently
  turning every future warm start cold (:data:`FATAL_STORE_ERRNOS`).

The directory is resolved from the explicit ``root`` argument, else the
``REPRO_CACHE_DIR`` environment variable (see :func:`default_cache_dir`);
:func:`attach_default_disk_cache` wires a directory into the process-wide
:func:`~repro.engine.cache.default_cache` so the CLI flag and environment
variable warm every engine built afterwards.
"""

from __future__ import annotations

import errno
import hashlib
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Any, Hashable, Optional, Tuple, Union

from repro.errors import ValidationError
from repro.telemetry import bind_families, default_registry

#: Environment variable naming the persistent cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Format version embedded in every content address.  Bump on any change
#: to artifact pickling layout or key derivation; old entries become
#: unreachable (and harmless) rather than wrongly shaped.
CACHE_VERSION = 1

# Bound lazily (see repro.telemetry.bind_families) so swapping the
# default registry after import is observed.
_METRICS = bind_families(lambda reg: {
    "ops": reg.counter(
        "engine_disk_cache_ops_total",
        "Persistent compile-cache operations by result",
        labels=("result",),
    ),
})

#: Exception types that mean "this entry's bytes are garbage" — the only
#: failures :meth:`DiskCompileCache.load` may degrade to a miss.  A bare
#: ``except Exception`` here used to also swallow resource-exhaustion
#: failures (``MemoryError``-adjacent, ``OSError``) that have nothing to
#: do with entry corruption and must surface.
_CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    ValueError,          # covers our own envelope-key mismatch
    KeyError,
    IndexError,
    TypeError,
    AttributeError,
    ImportError,         # artifact class moved/renamed between versions
    UnicodeDecodeError,
)

#: Exception types that mean "this value cannot be pickled" — the only
#: failures :meth:`DiskCompileCache.store` may degrade to a silent skip.
_UNPICKLABLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError, ValueError)

#: ``OSError`` errnos that indicate the disk itself failed rather than a
#: transient per-entry problem: full disk, exceeded quota, read-only
#: remount.  These re-raise from :meth:`DiskCompileCache.store` — a cache
#: that silently stops persisting on a full disk turns every warm start
#: cold with no visible cause.
FATAL_STORE_ERRNOS = frozenset(
    errno_value
    for errno_value in (
        errno.ENOSPC,
        getattr(errno, "EDQUOT", None),
        errno.EROFS,
    )
    if errno_value is not None
)


class DiskCacheStats:
    """Plain counters mirrored by the telemetry series.

    Unlike the telemetry registry (which may be disabled), these always
    count, so tests and the CLI can assert on them deterministically.
    """

    __slots__ = ("_lock", "hits", "misses", "stores", "corrupt", "errors")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.errors = 0

    def record(self, result: str) -> None:
        """Count one operation outcome and publish it to telemetry."""
        with self._lock:
            setattr(self, result, getattr(self, result) + 1)
        if default_registry().enabled:
            _METRICS()["ops"].labels(result=result).inc()

    def snapshot(self) -> dict:
        """Consistent dict of all counters."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt": self.corrupt,
                "errors": self.errors,
            }

    def __repr__(self) -> str:
        snap = self.snapshot()
        return "DiskCacheStats(" + ", ".join(
            f"{k}={v}" for k, v in snap.items()
        ) + ")"


def default_cache_dir() -> Optional[Path]:
    """The directory named by ``$REPRO_CACHE_DIR``, or ``None``."""
    value = os.environ.get(CACHE_DIR_ENV)
    return Path(value) if value else None


def cache_key_string(key: Hashable, version: int = CACHE_VERSION) -> str:
    """Canonical string form of an in-memory cache key.

    The in-memory :class:`~repro.engine.cache.CompileCache` keys are
    tuples of artifact kind, frozen spec dataclasses and ints; their
    ``repr`` is deterministic and embeds every field that affects the
    compile, which makes it a sound content-address preimage.
    """
    return f"repro-compile-cache/{version}|{key!r}"


class DiskCompileCache:
    """Persistent artifact store keyed by content address.

    Entries are pickled ``(key_string, value)`` envelopes named
    ``<sha256(key_string)>.pkl`` under ``root``.  All failure modes
    (unreadable directory, bad pickle, version skew, foreign files) are
    soft: :meth:`load` reports a miss and :meth:`store` gives up quietly,
    counting the outcome on :attr:`stats`.
    """

    def __init__(self, root: Union[str, Path], version: int = CACHE_VERSION):
        self._root = Path(root)
        try:
            self._root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ValidationError(
                f"cannot create disk cache directory {self._root}: {exc}"
            ) from exc
        self._version = version
        self.stats = DiskCacheStats()

    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """The directory entries live in."""
        return self._root

    @property
    def version(self) -> int:
        """Format version embedded in every content address."""
        return self._version

    def path_for(self, key: Hashable) -> Path:
        """The entry file a key resolves to (whether or not it exists)."""
        digest = hashlib.sha256(
            cache_key_string(key, self._version).encode()
        ).hexdigest()
        return self._root / f"{digest}.pkl"

    def __len__(self) -> int:
        return sum(1 for _ in self._root.glob("*.pkl"))

    def size_bytes(self) -> int:
        """Total bytes of entry files currently on disk."""
        total = 0
        for path in self._root.glob("*.pkl"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> int:
        """Delete every entry file; returns how many were removed."""
        removed = 0
        for path in self._root.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    # ------------------------------------------------------------------
    def load(self, key: Hashable) -> Tuple[bool, Any]:
        """``(found, value)`` for a key; corruption degrades to a miss.

        A hit requires the envelope to unpickle cleanly *and* carry the
        exact key string requested — anything else deletes the entry
        (best-effort) and reports ``(False, None)``.  Only genuine
        corruption shapes (:data:`_CORRUPTION_ERRORS`) are degraded;
        resource-exhaustion failures (``MemoryError``, ``OSError`` out
        of the unpickler) propagate to the caller.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.stats.record("misses")
            return False, None
        except OSError:
            self.stats.record("errors")
            return False, None
        try:
            envelope = pickle.loads(raw)
            stored_key, value = envelope
            if stored_key != cache_key_string(key, self._version):
                raise ValueError("envelope key mismatch")
        except _CORRUPTION_ERRORS:
            # Truncated write, garbage bytes, or a foreign/renamed file:
            # drop it so the next store rewrites a clean entry.
            self.stats.record("corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.stats.record("hits")
        return True, value

    def store(self, key: Hashable, value: Any) -> Optional[Path]:
        """Persist an artifact atomically; returns its path (None on failure).

        The temp file lives in the cache directory itself so
        :func:`os.replace` stays on one filesystem and is atomic; a
        concurrent store of the same key simply publishes last-writer-wins
        with both writers having produced identical content.

        Transient per-entry failures stay soft (counted on ``errors``,
        ``None`` returned), but a disk-level failure — full disk /
        exceeded quota / read-only filesystem, see
        :data:`FATAL_STORE_ERRNOS` — re-raises after cleanup: silently
        dropping every store on a full disk would turn warm starts cold
        with no visible cause.
        """
        path = self.path_for(key)
        envelope = (cache_key_string(key, self._version), value)
        try:
            payload = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        except _UNPICKLABLE_ERRORS:
            self.stats.record("errors")
            return None
        tmp_fd = None
        tmp_name = None
        try:
            tmp_fd, tmp_name = tempfile.mkstemp(
                dir=str(self._root), prefix=path.stem, suffix=".tmp"
            )
            with os.fdopen(tmp_fd, "wb") as handle:
                tmp_fd = None
                handle.write(payload)
            os.replace(tmp_name, path)
            tmp_name = None
        except OSError as exc:
            self.stats.record("errors")
            if tmp_fd is not None:
                try:
                    os.close(tmp_fd)
                except OSError:
                    pass
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            if exc.errno in FATAL_STORE_ERRNOS:
                raise
            return None
        self.stats.record("stores")
        return path

    def __repr__(self) -> str:
        return (
            f"DiskCompileCache(root={str(self._root)!r}, "
            f"version={self._version})"
        )
