"""Adaptive execution planner: a measured cost model + deterministic solver.

The paper's §2 "Matlab program" explores the design space *before*
committing a configuration to the PiCoGA: for each candidate parallelism
degree M it predicts cost and throughput, and only the winning point is
compiled.  The software stack had no such step, and ``BENCH_5`` shows the
price: ``engine_parallel`` measured **0.79x vs serial** on a 1-CPU host
because the user had to hand-pick backend x workers x shard plan x M and
picked wrong.  This module is that mapper turned into a production
autotuner, split into the two halves that make it testable:

* **Measurement** (:func:`probe_host`) — per-host micro-probes for
  backend kernel throughput, worker-pool spawn overhead, per-shard
  dispatch cost, shard-recombination (``x^k mod G``) cost and pickle
  bandwidth.  The result is a :class:`HostProfile`: *plain data*,
  serializable, persisted in the :class:`~repro.engine.diskcache.
  DiskCompileCache` under a host fingerprint so one probe pass serves
  every later process on the same machine.  Every probe takes an
  injectable ``timer``, so tests drive them with a fake clock.

* **Decision** (:class:`Planner`) — a deterministic solver over a
  :class:`WorkloadDescriptor` (standard, message size, batch, streams).
  Given a profile it enumerates backend x workers x M candidates,
  predicts each one's wall time from the cost tables alone (no timing at
  plan time), and returns an :class:`ExecutionPlan`.  A parallel plan is
  chosen **only** when it is predicted to beat the best serial plan by
  ``min_speedup`` (default 1.05x) — so on a 1-CPU profile the planner
  returns ``workers=1`` by construction, eliminating the BENCH_5
  regression class rather than detecting it after the fact.

Because profiles are plain data, tests feed synthetic hosts (1-CPU
laptop, 16-core server, slow-spawn process pool) and assert the chosen
plan without timing anything; see ``tests/test_engine_planner.py`` and
``docs/PLANNER.md`` for the cost-model terms and a worked decision trace.
"""

from __future__ import annotations

import os
import pickle
import platform
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.telemetry import (
    bind_families,
    default_flight_recorder,
    default_registry,
    default_tracer,
)

# Bound lazily (see repro.telemetry.bind_families) so swapping the
# default registry after import is observed by every counter below.
_METRICS = bind_families(lambda reg: {
    "probes": reg.counter(
        "engine_planner_probes_total",
        "Planner micro-probes executed, by probe kind",
        labels=("kind",),
    ),
    "plans": reg.counter(
        "engine_planner_plans_total",
        "Execution plans decided, by strategy",
        labels=("strategy",),
    ),
    "cache": reg.counter(
        "engine_planner_cache_total",
        "Planner cache operations (profile/plan layers), by result",
        labels=("kind", "result"),
    ),
    "prediction": reg.histogram(
        "engine_planner_prediction_ratio",
        "Actual / predicted throughput ratio for executed plans",
        labels=("strategy",),
        buckets=(0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 4.0),
    ),
})

#: Disk-cache envelope key for the persisted host profile.  The profile
#: embeds its own fingerprint; a mismatch on load (new kernel, different
#: CPU count, upgraded numpy) is counted and triggers a re-probe.
PROFILE_KEY = ("planner-profile",)

#: Format version folded into persisted profile/plan payloads; bump on
#: any cost-model or schema change to orphan stale entries.
#: v2: keystream cost tables (``keystream_bits_per_s``) + the
#: ``keystream`` workload kind.
PLANNER_VERSION = 2

#: Look-ahead factors the solver considers when the workload doesn't pin M.
M_CANDIDATES = (8, 16, 32, 64, 128)

#: Modeling constant: fixed per-block cost of one kernel invocation,
#: expressed in equivalent payload bits.  Folded into the M-efficiency
#: term ``M / (M + BLOCK_OVERHEAD_BITS)`` — larger M amortizes the fixed
#: cost, which is why the paper's mapper pushes M up until area runs out.
BLOCK_OVERHEAD_BITS = 32.0

#: Conservative default for process-pool spawn when the probe pass runs
#: without ``full=True`` (forking + interpreter start + engine rebuild).
DEFAULT_PROCESS_SPAWN_S = 0.25

#: Process-pool per-shard dispatch is dominated by argument pickling and
#: queue hops; when not measured directly it is scaled off the thread
#: dispatch probe by this factor.
PROCESS_DISPATCH_SCALE = 25.0

#: Workload kinds the solver understands.
KIND_CRC_BATCH = "crc-batch"
KIND_CRC_STREAM = "crc-stream"
KIND_SCRAMBLER_BATCH = "scrambler-batch"
KIND_KEYSTREAM = "keystream"
WORKLOAD_KINDS = (
    KIND_CRC_BATCH,
    KIND_CRC_STREAM,
    KIND_SCRAMBLER_BATCH,
    KIND_KEYSTREAM,
)

#: Keystream sources the planner knows how to cost (see
#: :mod:`repro.lfsr.wordlfsr` and :mod:`repro.lfsr.reference`).  These are
#: serial generators, so their candidates never shard.
KEYSTREAM_SOURCES = ("galois-bitserial", "word32", "word64")

#: Plan strategies.
STRATEGY_SERIAL = "serial"
STRATEGY_SHARD_BATCH = "shard-batch"
STRATEGY_SHARD_TIME = "shard-time"


def host_fingerprint() -> str:
    """A stable identity for "this host, this toolchain".

    Cost tables measured under one fingerprint must not be trusted under
    another: a different CPU count changes the parallel frontier, a
    different interpreter or numpy changes kernel throughput.  The
    fingerprint is deliberately coarse — it names the regime, not the
    exact clock speed (run-to-run noise is the cost model's margin to
    absorb, see ``min_speedup``).
    """
    try:
        import numpy as np

        numpy_version = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = "none"
    cpus = os.cpu_count() or 1
    if hasattr(os, "sched_getaffinity"):
        try:
            cpus = len(os.sched_getaffinity(0)) or cpus
        except OSError:  # pragma: no cover - affinity query denied
            pass
    parts = (
        platform.system(),
        platform.machine(),
        f"py{sys.version_info.major}.{sys.version_info.minor}",
        f"np{numpy_version}",
        f"cpu{cpus}",
        f"v{PLANNER_VERSION}",
    )
    return "-".join(parts)


def _usable_cpus() -> int:
    """CPUs actually schedulable for this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - affinity query denied
            pass
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Host profile: the cost tables, as plain data
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=True)
class HostProfile:
    """Measured (or synthetic) cost tables for one host.

    Every field is a plain float/int/str container so a profile pickles,
    JSON-serializes and compares by value; the solver consumes nothing
    else.  Units:

    ``backend_bits_per_s``
        Steady-state kernel throughput per backend name (payload bits
        per second through the batched matvec path).
    ``backend_mode``
        The pool substrate each backend shards onto: ``"thread"`` for
        GIL-releasing kernels, ``"process"`` for pure-Python ones.
    ``spawn_s`` / ``dispatch_s``
        One-time pool start cost and per-shard submit/collect cost, per
        mode.
    ``recombine_s``
        Per-shard ``x^k mod G`` carry-less-multiply fold cost (paid only
        by time-axis sharding).
    ``pickle_bits_per_s``
        Payload serialization bandwidth (paid round-trip by process
        pools).
    ``keystream_bits_per_s``
        Serial keystream generator throughput per source name (the
        :data:`KEYSTREAM_SOURCES` engines: bit-serial Galois reference
        vs the word-oriented σ-LFSRs).
    """

    fingerprint: str
    cpus: int
    backend_bits_per_s: Dict[str, float] = field(default_factory=dict)
    backend_mode: Dict[str, str] = field(default_factory=dict)
    spawn_s: Dict[str, float] = field(default_factory=dict)
    dispatch_s: Dict[str, float] = field(default_factory=dict)
    recombine_s: float = 0.0
    pickle_bits_per_s: float = float("inf")
    block_overhead_bits: float = BLOCK_OVERHEAD_BITS
    keystream_bits_per_s: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.cpus < 1:
            raise ValidationError(f"profile needs >= 1 cpu, got {self.cpus}")
        if not self.backend_bits_per_s:
            raise ValidationError("profile needs at least one backend rate")
        for name, rate in self.backend_bits_per_s.items():
            if rate <= 0:
                raise ValidationError(
                    f"backend {name!r} rate must be > 0, got {rate}"
                )
            if self.backend_mode.get(name) not in ("thread", "process"):
                raise ValidationError(
                    f"backend {name!r} needs a mode of thread|process"
                )
        for name, rate in self.keystream_bits_per_s.items():
            if rate <= 0:
                raise ValidationError(
                    f"keystream source {name!r} rate must be > 0, got {rate}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def synthetic(
        cls,
        cpus: int,
        fingerprint: str = "synthetic",
        packed_bits_per_s: float = 2.0e9,
        reference_bits_per_s: Optional[float] = 8.0e6,
        thread_spawn_s: float = 2e-4,
        process_spawn_s: float = DEFAULT_PROCESS_SPAWN_S,
        thread_dispatch_s: float = 5e-5,
        process_dispatch_s: float = 2e-3,
        recombine_s: float = 2e-5,
        pickle_bits_per_s: float = 4.0e9,
        block_overhead_bits: float = BLOCK_OVERHEAD_BITS,
        keystream_bits_per_s: Optional[Dict[str, float]] = None,
    ) -> "HostProfile":
        """A ready-made profile for tests and documentation examples.

        Defaults approximate the BENCH_5 container (packed backend ~2
        Gbit/s, reference ~300x slower); every term is overridable so a
        test can dial in "slow-spawn pool" or "GIL-bound host" shapes
        without reciting the whole table.  ``keystream_bits_per_s``
        defaults to the measured ordering on that container: word-oriented
        σ-LFSRs tens of times faster than the bit-serial register.
        """
        if keystream_bits_per_s is None:
            keystream_bits_per_s = {
                "galois-bitserial": 1.5e6,
                "word32": 4.0e7,
                "word64": 8.0e7,
            }
        rates = {"packed": float(packed_bits_per_s)}
        modes = {"packed": "thread"}
        if reference_bits_per_s is not None:
            rates["reference"] = float(reference_bits_per_s)
            modes["reference"] = "process"
        return cls(
            fingerprint=fingerprint,
            cpus=cpus,
            backend_bits_per_s=rates,
            backend_mode=modes,
            spawn_s={"thread": thread_spawn_s, "process": process_spawn_s},
            dispatch_s={"thread": thread_dispatch_s, "process": process_dispatch_s},
            recombine_s=recombine_s,
            pickle_bits_per_s=pickle_bits_per_s,
            block_overhead_bits=block_overhead_bits,
            keystream_bits_per_s={
                str(k): float(v) for k, v in keystream_bits_per_s.items()
            },
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain-dict form, stable across processes (for persistence)."""
        return {
            "version": PLANNER_VERSION,
            "fingerprint": self.fingerprint,
            "cpus": self.cpus,
            "backend_bits_per_s": dict(self.backend_bits_per_s),
            "backend_mode": dict(self.backend_mode),
            "spawn_s": dict(self.spawn_s),
            "dispatch_s": dict(self.dispatch_s),
            "recombine_s": self.recombine_s,
            "pickle_bits_per_s": self.pickle_bits_per_s,
            "block_overhead_bits": self.block_overhead_bits,
            "keystream_bits_per_s": dict(self.keystream_bits_per_s),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HostProfile":
        """Rebuild a profile; raises ValidationError on schema skew."""
        try:
            if int(data["version"]) != PLANNER_VERSION:
                raise ValidationError(
                    f"profile version {data['version']} != {PLANNER_VERSION}"
                )
            return cls(
                fingerprint=str(data["fingerprint"]),
                cpus=int(data["cpus"]),
                backend_bits_per_s={
                    str(k): float(v)
                    for k, v in data["backend_bits_per_s"].items()
                },
                backend_mode={
                    str(k): str(v) for k, v in data["backend_mode"].items()
                },
                spawn_s={str(k): float(v) for k, v in data["spawn_s"].items()},
                dispatch_s={
                    str(k): float(v) for k, v in data["dispatch_s"].items()
                },
                recombine_s=float(data["recombine_s"]),
                pickle_bits_per_s=float(data["pickle_bits_per_s"]),
                block_overhead_bits=float(data["block_overhead_bits"]),
                keystream_bits_per_s={
                    str(k): float(v)
                    for k, v in data["keystream_bits_per_s"].items()
                },
            )
        except ValidationError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ValidationError(f"malformed host profile record: {exc}") from None

    def describe(self) -> str:
        """One-line human summary for CLI decision traces."""
        rates = ", ".join(
            f"{name}={rate:.3g}"
            for name, rate in sorted(self.backend_bits_per_s.items())
        )
        return (
            f"{self.cpus} cpu(s), backends [{rates}] bits/s, "
            f"spawn thread={self.spawn_s.get('thread', 0):.2g}s "
            f"process={self.spawn_s.get('process', 0):.2g}s "
            f"({self.fingerprint})"
        )


# ----------------------------------------------------------------------
# Micro-probes
# ----------------------------------------------------------------------
def _count_probe(kind: str) -> None:
    """Publish one probe execution to telemetry (if enabled)."""
    if default_registry().enabled:
        _METRICS()["probes"].labels(kind=kind).inc()


def _probe_backend_rate(
    name: str, timer: Callable[[], float], reps: int
) -> float:
    """Payload bits/s through one backend's batched matvec path."""
    import numpy as np

    from repro.gf2.backend import get_backend

    backend = get_backend(name)
    k, batch = 32, 256
    rng = np.random.default_rng(12345)
    A = rng.integers(0, 2, size=(k, k)).astype(np.uint8)
    block = rng.integers(0, 2, size=(k, batch)).astype(np.uint8)
    packed = backend.pack(block)
    backend.matvec_batch(A, packed)  # warm any lazy setup off the clock
    t0 = timer()
    for _ in range(reps):
        backend.matvec_batch(A, packed)
    elapsed = max(timer() - t0, 1e-9)
    _count_probe(f"backend-{name}")
    return reps * k * batch / elapsed


def _probe_thread_costs(
    timer: Callable[[], float], reps: int
) -> Tuple[float, float]:
    """(spawn_s, per-shard dispatch_s) for the thread substrate."""
    from repro.engine.parallel import WorkerPool

    t0 = timer()
    pool = WorkerPool(2, mode="thread")
    pool.run(int, [("0",)])  # forces executor + thread start
    spawn = max(timer() - t0, 1e-9)
    t0 = timer()
    for _ in range(reps):
        pool.run(int, [("1",), ("2",)])
    dispatch = max(timer() - t0, 1e-9) / (2 * reps)
    pool.close()
    _count_probe("spawn-thread")
    return spawn, dispatch


def _probe_process_spawn(timer: Callable[[], float]) -> float:
    """One-time process-pool start cost (fork + interpreter + import)."""
    from repro.engine.parallel import WorkerPool

    t0 = timer()
    with WorkerPool(1, mode="process") as pool:
        pool.run(int, [("0",)])
        spawn = max(timer() - t0, 1e-9)
    _count_probe("spawn-process")
    return spawn


def _probe_recombine(timer: Callable[[], float], reps: int) -> float:
    """Per-shard ``x^k mod G`` fold cost (CRC-32 generator, k=4096)."""
    from repro.gf2.clmul import clmulmod, clpowmod

    g = (1 << 32) | 0x04C11DB7
    xk = clpowmod(2, 4096, g)
    acc = 0x12345678
    t0 = timer()
    for _ in range(reps):
        acc = clmulmod(acc, xk, g) ^ 0x9E3779B9
    elapsed = max(timer() - t0, 1e-9)
    _count_probe("recombine")
    return elapsed / reps


def _probe_keystream_rates(
    timer: Callable[[], float], reps: int
) -> Dict[str, float]:
    """Bits/s of each serial keystream source in :data:`KEYSTREAM_SOURCES`.

    The word-oriented engines are probed through their byte hot path
    (:meth:`~repro.lfsr.wordlfsr.WordLFSR.keystream_bytes`); the
    bit-serial baseline walks :class:`~repro.lfsr.reference.GaloisLFSR`
    for proportionally fewer bits, since it is the one the word engines
    are gated ≥20x against.
    """
    from repro.gf2.polynomial import GF2Polynomial
    from repro.lfsr.reference import GaloisLFSR
    from repro.lfsr.wordlfsr import WORD32, WORD64, WordLFSR, seed_words_from_bytes

    rates: Dict[str, float] = {}
    nbytes = 2048
    for spec in (WORD32, WORD64):
        seed = seed_words_from_bytes(spec, b"planner-probe")
        engine = WordLFSR(spec, seed)
        engine.keystream_bytes(64)  # warm the specialized loop off the clock
        t0 = timer()
        for _ in range(reps):
            engine.keystream_bytes(nbytes)
        elapsed = max(timer() - t0, 1e-9)
        rates[spec.name] = reps * 8 * nbytes / elapsed
        _count_probe(f"keystream-{spec.name}")
    poly = GF2Polynomial.from_exponents([31, 28, 0])  # PRBS-31 generator
    nbits = 2048
    t0 = timer()
    for _ in range(reps):
        GaloisLFSR(poly, 1).keystream(nbits)
    elapsed = max(timer() - t0, 1e-9)
    rates["galois-bitserial"] = reps * nbits / elapsed
    _count_probe("keystream-galois-bitserial")
    return rates


def _probe_pickle_rate(timer: Callable[[], float], reps: int) -> float:
    """Bits/s through ``pickle.dumps`` for bulk payload bytes."""
    payload = bytes(range(256)) * 256  # 64 KiB
    t0 = timer()
    for _ in range(reps):
        pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    elapsed = max(timer() - t0, 1e-9)
    _count_probe("pickle")
    return reps * 8 * len(payload) / elapsed


def probe_host(
    backends: Optional[Sequence[str]] = None,
    timer: Callable[[], float] = time.perf_counter,
    full: bool = False,
    reps: int = 3,
) -> HostProfile:
    """Measure this host's cost tables with bounded micro-probes.

    ``backends`` defaults to every registered GF(2) backend.  ``full``
    additionally measures process-pool spawn (expensive: a real fork +
    interpreter start); without it the conservative
    :data:`DEFAULT_PROCESS_SPAWN_S` stands in, which can only bias the
    solver *toward* serial — the safe direction.  ``timer`` is the clock
    every probe reads; tests inject a fake one to make the whole pass
    deterministic.  The returned profile embeds the current
    :func:`host_fingerprint`.
    """
    if backends is None:
        from repro.gf2.backend import available_backends

        backends = available_backends()
    if reps < 1:
        raise ValidationError(f"probe reps must be >= 1, got {reps}")
    rates: Dict[str, float] = {}
    modes: Dict[str, str] = {}
    for name in backends:
        from repro.gf2.backend import NumpyPackedBackend, get_backend

        # The reference bit-loop is ~300x slower; one rep is plenty.
        backend_reps = reps if name == "packed" else 1
        rates[name] = _probe_backend_rate(name, timer, backend_reps)
        modes[name] = (
            "thread"
            if isinstance(get_backend(name), NumpyPackedBackend)
            else "process"
        )
    thread_spawn, thread_dispatch = _probe_thread_costs(timer, reps)
    process_spawn = (
        _probe_process_spawn(timer) if full else DEFAULT_PROCESS_SPAWN_S
    )
    return HostProfile(
        fingerprint=host_fingerprint(),
        cpus=_usable_cpus(),
        backend_bits_per_s=rates,
        backend_mode=modes,
        spawn_s={"thread": thread_spawn, "process": process_spawn},
        dispatch_s={
            "thread": thread_dispatch,
            "process": thread_dispatch * PROCESS_DISPATCH_SCALE,
        },
        recombine_s=_probe_recombine(timer, max(reps, 8)),
        pickle_bits_per_s=_probe_pickle_rate(timer, reps),
        keystream_bits_per_s=_probe_keystream_rates(timer, reps),
    )


def get_profile(
    disk=None,
    prober: Optional[Callable[[], HostProfile]] = None,
    refresh: bool = False,
) -> HostProfile:
    """The host profile, loading from ``disk`` when it matches this host.

    A stored profile is trusted only if its embedded fingerprint equals
    the current :func:`host_fingerprint`; any mismatch (new container
    image, different CPU budget, upgraded numpy) is counted on
    ``engine_planner_cache_total{kind="profile",result="mismatch"}`` and
    triggers a fresh probe pass whose result replaces the stale entry.
    ``prober`` overrides :func:`probe_host` (tests inject a stub);
    ``refresh=True`` forces a re-probe unconditionally.
    """
    fingerprint = host_fingerprint()
    if disk is not None and not refresh:
        found, data = disk.load(PROFILE_KEY)
        if found:
            try:
                stored = HostProfile.from_dict(data)
            except ValidationError:
                stored = None
            if stored is not None and stored.fingerprint == fingerprint:
                if default_registry().enabled:
                    _METRICS()["cache"].labels(kind="profile", result="hit").inc()
                return stored
            if default_registry().enabled:
                _METRICS()["cache"].labels(kind="profile", result="mismatch").inc()
        elif default_registry().enabled:
            _METRICS()["cache"].labels(kind="profile", result="miss").inc()
    profile = (prober or probe_host)()
    if disk is not None:
        disk.store(PROFILE_KEY, profile.to_dict())
    return profile


# ----------------------------------------------------------------------
# Workload descriptor + execution plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadDescriptor:
    """What is about to run, in the units the cost model predicts from.

    ``message_bits`` is the (average) payload length per message/stream;
    ``batch`` the messages per batch call; ``streams`` the concurrent
    stream count for pipeline workloads.  ``M`` pins the look-ahead
    factor when the caller has already chosen one (``None`` lets the
    solver pick from :data:`M_CANDIDATES`).  ``warm_cache`` states
    whether compile artifacts are expected resident (they are, after the
    first batch; cold-start costs live in the disk-cache gate, not here).
    """

    kind: str
    standard: str
    message_bits: int
    batch: int = 1
    streams: int = 1
    M: Optional[int] = None
    warm_cache: bool = True

    def __post_init__(self):
        if self.kind not in WORKLOAD_KINDS:
            raise ValidationError(
                f"workload kind must be one of {WORKLOAD_KINDS}, got {self.kind!r}"
            )
        if self.message_bits < 0:
            raise ValidationError(
                f"message_bits must be >= 0, got {self.message_bits}"
            )
        if self.batch < 1 or self.streams < 1:
            raise ValidationError("batch and streams must be >= 1")
        if self.M is not None and self.M < 1:
            raise ValidationError(f"M must be >= 1, got {self.M}")

    @property
    def total_bits(self) -> int:
        """Payload bits one batch call (or pump cycle) moves."""
        if self.kind == KIND_CRC_STREAM:
            return self.message_bits * self.streams
        return self.message_bits * self.batch

    @property
    def shardable_items(self) -> int:
        """Independent units the batch dimension can split into."""
        if self.kind == KIND_CRC_STREAM:
            return self.streams
        return self.batch

    def key(self) -> Tuple:
        """Hashable identity used by the plan caches."""
        return (
            self.kind,
            self.standard,
            self.message_bits,
            self.batch,
            self.streams,
            self.M,
            self.warm_cache,
        )

    def to_dict(self) -> Dict:
        """Plain-dict form for persistence and reports."""
        return {
            "kind": self.kind,
            "standard": self.standard,
            "message_bits": self.message_bits,
            "batch": self.batch,
            "streams": self.streams,
            "M": self.M,
            "warm_cache": self.warm_cache,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadDescriptor":
        """Rebuild a descriptor; raises ValidationError on bad records."""
        try:
            return cls(
                kind=str(data["kind"]),
                standard=str(data["standard"]),
                message_bits=int(data["message_bits"]),
                batch=int(data.get("batch", 1)),
                streams=int(data.get("streams", 1)),
                M=None if data.get("M") is None else int(data["M"]),
                warm_cache=bool(data.get("warm_cache", True)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed workload record: {exc}") from None

    def describe(self) -> str:
        """One-line human summary for CLI decision traces."""
        extra = (
            f" streams={self.streams}"
            if self.kind == KIND_CRC_STREAM
            else f" B={self.batch}"
        )
        m = f" M={self.M}" if self.M is not None else ""
        return f"{self.kind} {self.standard}{extra} x {self.message_bits} bits{m}"


@dataclass(frozen=True)
class PlanCandidate:
    """One point of the explored design space, with its predicted time."""

    backend: str
    workers: int
    mode: str
    M: int
    strategy: str
    predicted_s: float

    def to_dict(self) -> Dict:
        """Plain-dict form for decision traces."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "mode": self.mode,
            "M": self.M,
            "strategy": self.strategy,
            "predicted_s": self.predicted_s,
        }


@dataclass(frozen=True)
class ExecutionPlan:
    """The solver's decision: how one workload should execute.

    ``mode`` is the pool substrate (``"serial"`` when ``workers == 1``).
    ``predicted_s`` is the chosen plan's modeled wall time per batch
    call, ``serial_s`` the best serial candidate's — their ratio is the
    predicted speedup the benchmark gate holds the plan to.
    """

    workload: WorkloadDescriptor
    backend: str
    workers: int
    mode: str
    M: int
    strategy: str
    predicted_s: float
    serial_s: float
    fingerprint: str

    @property
    def is_serial(self) -> bool:
        """Whether the plan degenerates to the serial engine."""
        return self.workers == 1

    @property
    def predicted_speedup(self) -> float:
        """Modeled speedup of the plan over the best serial candidate."""
        if self.predicted_s <= 0:
            return 1.0
        return self.serial_s / self.predicted_s

    @property
    def predicted_rate(self) -> float:
        """Messages (or streams) per second the model expects."""
        if self.predicted_s <= 0:
            return 0.0
        return self.workload.shardable_items / self.predicted_s

    def to_dict(self) -> Dict:
        """Plain-dict form for persistence, telemetry and reports."""
        return {
            "version": PLANNER_VERSION,
            "workload": self.workload.to_dict(),
            "backend": self.backend,
            "workers": self.workers,
            "mode": self.mode,
            "M": self.M,
            "strategy": self.strategy,
            "predicted_s": self.predicted_s,
            "serial_s": self.serial_s,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExecutionPlan":
        """Rebuild a plan; raises ValidationError on schema skew."""
        try:
            if int(data["version"]) != PLANNER_VERSION:
                raise ValidationError(
                    f"plan version {data['version']} != {PLANNER_VERSION}"
                )
            return cls(
                workload=WorkloadDescriptor.from_dict(data["workload"]),
                backend=str(data["backend"]),
                workers=int(data["workers"]),
                mode=str(data["mode"]),
                M=int(data["M"]),
                strategy=str(data["strategy"]),
                predicted_s=float(data["predicted_s"]),
                serial_s=float(data["serial_s"]),
                fingerprint=str(data["fingerprint"]),
            )
        except ValidationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed execution plan record: {exc}") from None

    def describe(self) -> List[str]:
        """Human-readable decision trace lines for the CLI."""
        lines = [
            f"workload:  {self.workload.describe()}",
            (
                f"decision:  {self.strategy} — backend={self.backend} "
                f"workers={self.workers} mode={self.mode} M={self.M}"
            ),
            (
                f"predicted: {1e3 * self.predicted_s:.3f} ms/call "
                f"({self.predicted_rate:,.0f} items/s), "
                f"{self.predicted_speedup:.2f}x vs best serial "
                f"({1e3 * self.serial_s:.3f} ms)"
            ),
            f"host:      {self.fingerprint}",
        ]
        return lines


#: Serve-protocol ops per message (open-stream / feed-chunk / read-digest)
#: — the unit the micro-batch model spreads a message's engine time over.
SERVE_OPS_PER_MESSAGE = 3


@dataclass(frozen=True)
class MicroBatchPlan:
    """The planner's micro-batching decision for a serve workload.

    ``enabled=False`` means the modeled speedup never clears the
    planner's commitment threshold (engine-bound messages — handoffs are
    noise) and the server should keep its serial executor path.
    ``crossover_occupancy`` is the smallest round size that pays: below
    it the batcher flushes eagerly, so a lone client keeps serial-path
    latency.  See :meth:`Planner.plan_serve_batch` for the model.
    """

    enabled: bool
    max_batch: int
    linger_s: float
    crossover_occupancy: int
    predicted_speedup: float
    fingerprint: str = ""

    def to_dict(self) -> Dict:
        """JSON-ready form (flight-recorder events, stats verb)."""
        return {
            "enabled": self.enabled,
            "max_batch": self.max_batch,
            "linger_s": self.linger_s,
            "crossover_occupancy": self.crossover_occupancy,
            "predicted_speedup": round(self.predicted_speedup, 3),
            "fingerprint": self.fingerprint,
        }

    def describe(self) -> str:
        """One decision line for the CLI."""
        if not self.enabled:
            return (
                f"micro-batch: serial (predicted speedup "
                f"{self.predicted_speedup:.2f}x below threshold)"
            )
        return (
            f"micro-batch: B={self.max_batch} "
            f"linger={1e6 * self.linger_s:.0f}us "
            f"crossover={self.crossover_occupancy} "
            f"({self.predicted_speedup:.2f}x predicted)"
        )


# ----------------------------------------------------------------------
# The deterministic solver
# ----------------------------------------------------------------------
def _worker_ladder(cpus: int, items: int) -> Tuple[int, ...]:
    """Worker counts worth considering: powers of two up to the core
    count, the core count itself, all capped by the shardable items.

    A single shardable item (``items == 1``) means the *time axis* is
    the only parallel dimension — shard count is then bounded by cores,
    not items, so the cap falls back to ``cpus``."""
    cap = max(1, min(cpus, items)) if items >= 2 else cpus
    ladder = {1}
    w = 2
    while w <= cap:
        ladder.add(w)
        w *= 2
    ladder.add(cap)
    return tuple(sorted(ladder))


class Planner:
    """Deterministic plan solver over one host profile.

    ``plan`` is pure given ``(profile, workload)``: it never times
    anything, so tests assert decisions on synthetic profiles directly.
    Solved plans memoize in-memory and persist to the disk cache (when
    one is attached) keyed by the profile fingerprint, so later processes
    on the same host skip both the probe pass *and* the solve.

    ``min_speedup`` is the commitment threshold: a parallel candidate
    must beat the best serial candidate by at least this factor of
    *predicted* time, otherwise the plan stays serial.  This is what
    turns the BENCH_5 class of regression (0.79x from blind sharding)
    into a non-event — the model must first claim >= 1.05x, and the
    benchmark gate then verifies the claim against reality.
    """

    def __init__(
        self,
        profile: Optional[HostProfile] = None,
        disk=None,
        m_candidates: Sequence[int] = M_CANDIDATES,
        min_speedup: float = 1.05,
        min_shard_bits: int = 4096,
        prober: Optional[Callable[[], HostProfile]] = None,
    ):
        if min_speedup < 1.0:
            raise ValidationError(
                f"min_speedup must be >= 1.0, got {min_speedup}"
            )
        if not m_candidates:
            raise ValidationError("need at least one M candidate")
        self._profile = profile
        self._disk = disk
        self._m_candidates = tuple(sorted(set(int(m) for m in m_candidates)))
        self._min_speedup = float(min_speedup)
        self._min_shard_bits = max(1, int(min_shard_bits))
        self._prober = prober
        self._plans: Dict[Tuple, ExecutionPlan] = {}
        self._microbatch: Dict[Tuple, "MicroBatchPlan"] = {}

    # ------------------------------------------------------------------
    @property
    def profile(self) -> HostProfile:
        """The cost tables in force (probing lazily on first use)."""
        if self._profile is None:
            self._profile = get_profile(disk=self._disk, prober=self._prober)
        return self._profile

    @property
    def min_speedup(self) -> float:
        """Predicted-speedup threshold a parallel plan must clear."""
        return self._min_speedup

    # ------------------------------------------------------------------
    def _predict_serial(self, workload: WorkloadDescriptor, backend: str, M: int) -> float:
        """Modeled serial wall time for one batch call."""
        profile = self.profile
        rate = profile.backend_bits_per_s[backend]
        eff = M / (M + profile.block_overhead_bits)
        return max(workload.total_bits, 1) / (rate * eff)

    def _predict_parallel(
        self,
        workload: WorkloadDescriptor,
        backend: str,
        workers: int,
        M: int,
    ) -> Optional[PlanCandidate]:
        """Modeled parallel wall time, or None when sharding can't apply."""
        profile = self.profile
        total = workload.total_bits
        if total < self._min_shard_bits:
            return None  # the engines bypass the pool below this floor
        mode = profile.backend_mode[backend]
        if workload.shardable_items >= 2:
            strategy = STRATEGY_SHARD_BATCH
            shards = min(workers, workload.shardable_items)
        else:
            strategy = STRATEGY_SHARD_TIME
            shards = workers
            if total < 2 * M * shards:
                return None  # shards thinner than one block each
        compute = self._predict_serial(workload, backend, M)
        t = compute / min(workers, profile.cpus)
        t += profile.spawn_s.get(mode, 0.0)
        t += shards * profile.dispatch_s.get(mode, 0.0)
        if mode == "process":
            t += total / profile.pickle_bits_per_s
        if strategy == STRATEGY_SHARD_TIME:
            t += shards * profile.recombine_s
        return PlanCandidate(
            backend=backend,
            workers=workers,
            mode=mode,
            M=M,
            strategy=strategy,
            predicted_s=t,
        )

    def _keystream_candidates(
        self, workload: WorkloadDescriptor
    ) -> List[PlanCandidate]:
        """One serial candidate per keystream source, fastest first.

        Keystream generators are sequential by construction (each word
        depends on the register), so the design space is the *source*
        axis — bit-serial reference vs the word-oriented σ-LFSRs — not a
        worker ladder.  The winning candidate's ``backend`` names the
        source to instantiate.
        """
        profile = self.profile
        if not profile.keystream_bits_per_s:
            raise ValidationError(
                "host profile has no keystream rates (re-probe with "
                "planner version >= 2)"
            )
        M = workload.M if workload.M is not None else 1
        out = [
            PlanCandidate(
                backend=source,
                workers=1,
                mode="serial",
                M=M,
                strategy=STRATEGY_SERIAL,
                predicted_s=max(workload.total_bits, 1) / rate,
            )
            for source, rate in sorted(profile.keystream_bits_per_s.items())
        ]
        return sorted(out, key=lambda c: c.predicted_s)

    def candidates(self, workload: WorkloadDescriptor) -> List[PlanCandidate]:
        """Every explored design point, fastest-predicted first.

        The iteration order (backend name, then M, then workers — all
        ascending) plus strict-improvement selection makes the winner
        deterministic even under exact ties.  Keystream workloads explore
        the source axis instead (see :meth:`_keystream_candidates`).
        """
        if workload.kind == KIND_KEYSTREAM:
            return self._keystream_candidates(workload)
        profile = self.profile
        ms = (
            (workload.M,) if workload.M is not None else self._m_candidates
        )
        out: List[PlanCandidate] = []
        for backend in sorted(profile.backend_bits_per_s):
            for M in ms:
                out.append(
                    PlanCandidate(
                        backend=backend,
                        workers=1,
                        mode="serial",
                        M=M,
                        strategy=STRATEGY_SERIAL,
                        predicted_s=self._predict_serial(workload, backend, M),
                    )
                )
                for workers in _worker_ladder(
                    profile.cpus, max(workload.shardable_items, workload.streams)
                ):
                    if workers == 1:
                        continue
                    cand = self._predict_parallel(workload, backend, workers, M)
                    if cand is not None:
                        out.append(cand)
        # Stable sort: candidate list order breaks exact predicted ties.
        return sorted(out, key=lambda c: c.predicted_s)

    def solve(self, workload: WorkloadDescriptor) -> ExecutionPlan:
        """Pick the plan for a workload (no caches consulted)."""
        best_serial: Optional[PlanCandidate] = None
        best_parallel: Optional[PlanCandidate] = None
        for cand in self.candidates(workload):
            if cand.workers == 1:
                if best_serial is None or cand.predicted_s < best_serial.predicted_s:
                    best_serial = cand
            else:
                if best_parallel is None or cand.predicted_s < best_parallel.predicted_s:
                    best_parallel = cand
        assert best_serial is not None  # candidates() always emits serial
        chosen = best_serial
        if (
            best_parallel is not None
            and best_serial.predicted_s
            >= self._min_speedup * best_parallel.predicted_s
        ):
            chosen = best_parallel
        return ExecutionPlan(
            workload=workload,
            backend=chosen.backend,
            workers=chosen.workers,
            mode=chosen.mode,
            M=chosen.M,
            strategy=chosen.strategy,
            predicted_s=chosen.predicted_s,
            serial_s=best_serial.predicted_s,
            fingerprint=self.profile.fingerprint,
        )

    def plan(self, workload: WorkloadDescriptor) -> ExecutionPlan:
        """The (cached) execution plan for a workload.

        Resolution order: in-memory memo, then the disk cache (keyed by
        ``("planner-plan", fingerprint, workload key)``), then a fresh
        :meth:`solve` whose result is written through both layers.  The
        decision is recorded as a ``planner.plan`` span and counted on
        ``engine_planner_plans_total{strategy=...}``.
        """
        key = workload.key()
        cached = self._plans.get(key)
        if cached is not None:
            if default_registry().enabled:
                _METRICS()["cache"].labels(kind="plan", result="hit").inc()
            return cached
        disk_key = ("planner-plan", self.profile.fingerprint) + key
        if self._disk is not None:
            found, data = self._disk.load(disk_key)
            if found:
                try:
                    plan = ExecutionPlan.from_dict(data)
                except ValidationError:
                    plan = None
                if plan is not None and plan.fingerprint == self.profile.fingerprint:
                    if default_registry().enabled:
                        _METRICS()["cache"].labels(kind="plan", result="hit").inc()
                    self._plans[key] = plan
                    return plan
        if default_registry().enabled:
            _METRICS()["cache"].labels(kind="plan", result="miss").inc()
        with default_tracer().span(
            "planner.plan",
            standard=workload.standard,
            kind=workload.kind,
        ) as span:
            plan = self.solve(workload)
            if span is not None:
                span.attributes.update(
                    strategy=plan.strategy,
                    backend=plan.backend,
                    workers=plan.workers,
                    M=plan.M,
                    predicted_speedup=round(plan.predicted_speedup, 3),
                )
        if default_registry().enabled:
            _METRICS()["plans"].labels(strategy=plan.strategy).inc()
        recorder = default_flight_recorder()
        if recorder.enabled:
            recorder.record(
                "plan",
                f"{workload.standard}/{workload.kind} -> {plan.strategy}",
                strategy=plan.strategy,
                backend=plan.backend,
                workers=plan.workers,
                M=plan.M,
                predicted_speedup=round(plan.predicted_speedup, 3),
            )
        self._plans[key] = plan
        if self._disk is not None:
            self._disk.store(disk_key, plan.to_dict())
        return plan

    def plan_serve_batch(
        self, workload: WorkloadDescriptor
    ) -> "MicroBatchPlan":
        """The micro-batching decision for a serve-path workload.

        Models the serve executor's per-op handoff cost (the profile's
        thread ``dispatch_s``) against the per-op engine time implied by
        the workload's message size and the fastest probed backend.  A
        round of occupancy ``B`` pays one handoff for ``B`` ops, so the
        modeled speedup at occupancy B is::

            speedup(B) = (dispatch + op_s) / (dispatch / B + op_s)

        The **crossover occupancy** is the smallest B clearing
        :attr:`min_speedup` — below it the batcher must flush eagerly so
        a lone client keeps the serial path's p50.  ``max_batch`` is the
        smallest rung capturing ≥95% of the asymptotic speedup (bigger
        rounds only add latency), and a non-zero linger is granted only
        when handoffs dominate engine time (continuous batching already
        self-lingers for the engine-bound case).  Deterministic: pure
        arithmetic over the host profile, memoized per workload key.
        """
        key = workload.key()
        cached = self._microbatch.get(key)
        if cached is not None:
            return cached
        profile = self.profile
        dispatch = profile.dispatch_s.get("thread", 5e-5)
        rate = max(profile.backend_bits_per_s.values())
        op_s = max(workload.message_bits, 1) / rate / SERVE_OPS_PER_MESSAGE

        def speedup(B: int) -> float:
            return (dispatch + op_s) / (dispatch / B + op_s)

        ladder = tuple(2 ** k for k in range(9))  # 1..256
        crossover = next(
            (B for B in ladder if speedup(B) >= self._min_speedup), 0
        )
        if crossover == 0:
            plan = MicroBatchPlan(
                enabled=False,
                max_batch=1,
                linger_s=0.0,
                crossover_occupancy=0,
                predicted_speedup=speedup(ladder[-1]),
                fingerprint=profile.fingerprint,
            )
        else:
            asymptote = speedup(ladder[-1])
            max_batch = next(
                B for B in ladder if speedup(B) >= 0.95 * asymptote
            )
            max_batch = max(max_batch, crossover)
            # Handoff-dominated ops benefit from a short straggler
            # window; engine-bound ops get their window for free from
            # round execution time itself.
            linger_s = min(2.0 * dispatch, 5e-4) if dispatch > op_s else 0.0
            plan = MicroBatchPlan(
                enabled=True,
                max_batch=max_batch,
                linger_s=linger_s,
                crossover_occupancy=crossover,
                predicted_speedup=speedup(max_batch),
                fingerprint=profile.fingerprint,
            )
        recorder = default_flight_recorder()
        if recorder.enabled:
            recorder.record(
                "plan-microbatch",
                f"{workload.standard}/{workload.kind} -> "
                + (f"batch B={plan.max_batch}" if plan.enabled else "serial"),
                **plan.to_dict(),
            )
        self._microbatch[key] = plan
        return plan

    def record_actual(self, plan: ExecutionPlan, actual_s: float) -> float:
        """Publish predicted-vs-actual for an executed plan.

        ``actual_s`` is the measured wall time of one batch call under
        the plan.  Returns ``actual_rate / predicted_rate`` (above 1.0 =
        the host beat the model) and observes it on the
        ``engine_planner_prediction_ratio`` histogram so soak runs can
        watch model drift.
        """
        if actual_s <= 0:
            raise ValidationError(f"actual_s must be > 0, got {actual_s}")
        ratio = plan.predicted_s / actual_s
        if default_registry().enabled:
            _METRICS()["prediction"].labels(strategy=plan.strategy).observe(ratio)
        return ratio


_DEFAULT_PLANNER: Optional[Planner] = None


def default_planner(refresh: bool = False) -> Planner:
    """The process-wide planner, wired to the default disk cache.

    The first call probes the host (or loads a matching persisted
    profile); later calls reuse the instance.  ``refresh=True`` discards
    it, forcing a re-probe — the CLI's ``plan --refresh`` escape hatch.
    """
    global _DEFAULT_PLANNER
    if refresh:
        _DEFAULT_PLANNER = None
    if _DEFAULT_PLANNER is None:
        from repro.engine.cache import default_cache

        _DEFAULT_PLANNER = Planner(disk=default_cache().disk)
    return _DEFAULT_PLANNER
