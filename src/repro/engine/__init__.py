"""repro.engine — the vectorized batch/streaming execution subsystem.

Three layers, each reusable on its own:

* :mod:`repro.engine.cache` — a bounded LRU compile cache for the linear-
  algebra artifacts every engine needs (state spaces, look-ahead systems,
  Derby transforms, mapped PiCoGA netlists), keyed by ``(spec, M, method)``
  with hit/miss counters for the benchmark harness.
* :mod:`repro.engine.batch` — bit-packed numpy kernels that run the
  ``x(n+M) = A^M x(n) + B_M u_M(n)`` recurrence over B independent messages
  simultaneously (CRC, additive and multiplicative scramblers), with the
  same head-zero-padding + init-fold tail contract as
  :class:`repro.dream.system.DreamSystem`.
* :mod:`repro.engine.pipeline` — a chunked feed/finalize streaming API so
  long messages and many concurrent streams share the cache and the
  vectorized kernels.
"""

from repro.engine.batch import (
    BatchAdditiveScrambler,
    BatchCRC,
    BatchMultiplicativeScrambler,
    gf2_mul_packed,
    pack_bits,
    unpack_bits,
)
from repro.engine.cache import CacheStats, CompileCache, default_cache
from repro.engine.pipeline import CRCPipeline, ScramblerPipeline

__all__ = [
    "BatchAdditiveScrambler",
    "BatchCRC",
    "BatchMultiplicativeScrambler",
    "CacheStats",
    "CompileCache",
    "CRCPipeline",
    "ScramblerPipeline",
    "default_cache",
    "gf2_mul_packed",
    "pack_bits",
    "unpack_bits",
]
