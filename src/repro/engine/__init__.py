"""repro.engine — the vectorized batch/streaming execution subsystem.

Three layers, each reusable on its own:

* :mod:`repro.engine.cache` — a bounded LRU compile cache for the linear-
  algebra artifacts every engine needs (state spaces, look-ahead systems,
  Derby transforms, mapped PiCoGA netlists), keyed by ``(spec, M, method)``
  with hit/miss counters for the benchmark harness.
* :mod:`repro.engine.batch` — bit-packed numpy kernels that run the
  ``x(n+M) = A^M x(n) + B_M u_M(n)`` recurrence over B independent messages
  simultaneously (CRC, additive and multiplicative scramblers), with the
  same head-zero-padding + init-fold tail contract as
  :class:`repro.dream.system.DreamSystem`.
* :mod:`repro.engine.pipeline` — a chunked feed/finalize streaming API so
  long messages and many concurrent streams share the cache and the
  vectorized kernels.
* :mod:`repro.engine.parallel` — a sharded multi-worker execution layer:
  batch workloads partition across a thread pool (numpy kernels release
  the GIL) or a process pool (pure-Python backends), single messages
  time-shard with exact ``x^k mod G`` recombination, and streaming
  pipelines spread over shard pipelines with a work-stealing scheduler.
* :mod:`repro.engine.diskcache` — a content-addressed persistent compile
  cache that warms the in-memory LRU across processes and runs.
* :mod:`repro.engine.planner` — an adaptive execution planner: per-host
  micro-probed cost tables (persisted under a host fingerprint) and a
  deterministic solver picking backend x workers x shard plan x M per
  workload, falling back to serial whenever sharding can't pay.
* :mod:`repro.engine.microbatch` — a continuous-batching scheduler that
  coalesces ops from many concurrent submitters (the serve path's
  connections) into single wide executor calls, with planner-chosen
  occupancy and linger windows.
"""

from repro.engine.batch import (
    BatchAdditiveScrambler,
    BatchCRC,
    BatchMultiplicativeScrambler,
    BatchWordScrambler,
    gf2_mul_packed,
    pack_bits,
    unpack_bits,
)
from repro.engine.cache import (
    CacheStats,
    CompileCache,
    default_cache,
    estimate_entry_bytes,
)
from repro.engine.diskcache import (
    CACHE_DIR_ENV,
    DiskCacheStats,
    DiskCompileCache,
    default_cache_dir,
)
from repro.engine.parallel import (
    WORKERS_ENV,
    ParallelBatchAdditiveScrambler,
    ParallelBatchCRC,
    ShardedCRCPipeline,
    ShardScheduler,
    WorkerPool,
    plan_shards,
    resolve_workers,
)
from repro.engine.microbatch import (
    BatcherClosed,
    MicroBatcher,
    MicroBatchStats,
    run_ops,
    submit_all,
)
from repro.engine.pipeline import CRCPipeline, ScramblerPipeline
from repro.engine.planner import (
    ExecutionPlan,
    HostProfile,
    MicroBatchPlan,
    PlanCandidate,
    Planner,
    WorkloadDescriptor,
    default_planner,
    get_profile,
    host_fingerprint,
    probe_host,
)

__all__ = [
    "BatchAdditiveScrambler",
    "BatchCRC",
    "BatcherClosed",
    "BatchMultiplicativeScrambler",
    "BatchWordScrambler",
    "CACHE_DIR_ENV",
    "CacheStats",
    "CompileCache",
    "CRCPipeline",
    "DiskCacheStats",
    "DiskCompileCache",
    "ExecutionPlan",
    "HostProfile",
    "MicroBatcher",
    "MicroBatchPlan",
    "MicroBatchStats",
    "ParallelBatchAdditiveScrambler",
    "ParallelBatchCRC",
    "PlanCandidate",
    "Planner",
    "ScramblerPipeline",
    "ShardedCRCPipeline",
    "ShardScheduler",
    "WorkerPool",
    "WorkloadDescriptor",
    "WORKERS_ENV",
    "default_cache",
    "default_cache_dir",
    "default_planner",
    "estimate_entry_bytes",
    "get_profile",
    "gf2_mul_packed",
    "host_fingerprint",
    "pack_bits",
    "plan_shards",
    "probe_host",
    "resolve_workers",
    "run_ops",
    "submit_all",
    "unpack_bits",
]
