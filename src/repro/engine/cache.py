"""Bounded LRU compile cache for LFSR engine artifacts.

Every parallel engine in this library starts from the same expensive
compiles: the state-space quadruple, the M-level look-ahead expansion, the
Derby change of basis (a Krylov basis plus a GF(2) inversion) and — for the
co-simulation path — the mapped PiCoGA netlists (CSE + packing + routing).
At production batch sizes these dominate end-to-end latency whenever a spec
is seen for the first time, and they are pure functions of
``(spec, M, method)``; :class:`CompileCache` memoizes them behind one
bounded LRU so repeated specs recompile at dictionary-lookup cost.

The cache is deliberately generic (``get(key, builder)``) with typed
helpers for each artifact family, and it exposes hit/miss/eviction
counters so the benchmark harness can assert near-zero recompile cost.

A module-level :func:`default_cache` instance is shared by
:class:`~repro.engine.batch.BatchCRC`, the streaming pipelines and
:class:`~repro.dream.system.DreamSystem`'s analytic mode, so heterogeneous
workloads touching the same standards share one compile.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Tuple

from repro.crc.spec import CRCSpec
from repro.errors import CompileError, ReproError, ValidationError
from repro.gf2.matrix import GF2Matrix
from repro.lfsr.lookahead import (
    LookaheadSystem,
    expand_lookahead,
    scrambler_output_matrix,
)
from repro.lfsr.statespace import LFSRStateSpace, crc_statespace, scrambler_statespace
from repro.lfsr.transform import DerbyTransform, derby_transform
from repro.scrambler.specs import ScramblerSpec
from repro.telemetry import default_registry

_REGISTRY = default_registry()
_LOOKUPS = _REGISTRY.counter(
    "engine_compile_cache_lookups_total",
    "Compile-cache lookups by result",
    labels=("result",),
)
_EVICTIONS = _REGISTRY.counter(
    "engine_compile_cache_evictions_total", "Compile-cache LRU evictions"
)
_ENTRIES = _REGISTRY.gauge(
    "engine_compile_cache_entries", "Compiled artifacts resident across caches"
)


class CacheStats:
    """Counters exposed for benchmarks and capacity tuning.

    Increments take an internal lock so the counters stay exact when the
    pipelines drive one cache from several threads — readers see a
    consistent value regardless of who holds the cache's own lock.
    """

    __slots__ = ("_lock", "_hits", "_misses", "_evictions")

    def __init__(self, hits: int = 0, misses: int = 0, evictions: int = 0):
        self._lock = threading.Lock()
        self._hits = hits
        self._misses = misses
        self._evictions = evictions

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to run the builder."""
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped by the LRU policy."""
        with self._lock:
            return self._evictions

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        with self._lock:
            return self._hits + self._misses

    @property
    def hit_rate(self) -> float:
        """hits / lookups (0.0 when never used)."""
        with self._lock:
            lookups = self._hits + self._misses
            return self._hits / lookups if lookups else 0.0

    def record_hit(self) -> None:
        """Count one cache hit."""
        with self._lock:
            self._hits += 1

    def record_miss(self) -> None:
        """Count one cache miss."""
        with self._lock:
            self._misses += 1

    def record_eviction(self) -> None:
        """Count one LRU eviction."""
        with self._lock:
            self._evictions += 1

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    def snapshot(self) -> dict:
        """Consistent ``{hits, misses, evictions}`` dict."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"CacheStats(hits={snap['hits']}, misses={snap['misses']}, "
            f"evictions={snap['evictions']})"
        )


class CompileCache:
    """Bounded LRU cache over ``(artifact kind, spec, M, method)`` keys.

    Thread-safe: a single lock guards the LRU order and the counters.  The
    builders themselves run outside the lock, so two threads racing on the
    same cold key may both compile — but the *first* insert wins and the
    loser's artifact is discarded, preserving the same-object identity
    guarantee that :meth:`mapped_crc` documents (a
    :class:`~repro.picoga.array.PicogaArray` must resolve repeated loads
    to the identical netlist object, like the hardware configuration
    cache serving one bitstream).
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValidationError("cache capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of cached artifacts."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self):
        """Current keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        with self._lock:
            _ENTRIES.dec(len(self._entries))
            self._entries.clear()
            self.stats.reset()

    # ------------------------------------------------------------------
    def get(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key``, compiling on first use.

        Builder failures are reported as
        :class:`~repro.errors.CompileError` (library-typed errors pass
        through unchanged); nothing is cached on failure.
        """
        with self._lock:
            if key in self._entries:
                self.stats.record_hit()
                _LOOKUPS.labels(result="hit").inc()
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stats.record_miss()
            _LOOKUPS.labels(result="miss").inc()
        try:
            value = builder()
        except ReproError:
            raise
        except Exception as exc:
            raise CompileError(f"compiling cache entry {key!r} failed: {exc}") from exc
        with self._lock:
            if key in self._entries:
                # Another thread compiled the same cold key first; keep its
                # artifact so every caller holds the identical object.
                self._entries.move_to_end(key)
                return self._entries[key]
            _ENTRIES.inc()
            self._entries[key] = value
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.stats.record_eviction()
                _EVICTIONS.inc()
                _ENTRIES.dec()
        return value

    # ------------------------------------------------------------------
    # Typed helpers — one per artifact family
    # ------------------------------------------------------------------
    def crc_statespace(self, spec: CRCSpec) -> LFSRStateSpace:
        """State-space realization of a CRC generator, cached."""
        return self.get(("statespace", spec), lambda: crc_statespace(spec.generator()))

    def scrambler_statespace(self, spec: ScramblerSpec) -> LFSRStateSpace:
        """State-space realization of a scrambler polynomial, cached."""
        return self.get(
            ("scrambler-statespace", spec), lambda: scrambler_statespace(spec.poly)
        )

    def lookahead(self, spec: CRCSpec, M: int) -> LookaheadSystem:
        """M-level look-ahead expansion for a CRC, cached."""
        return self.get(
            ("lookahead", spec, M),
            lambda: expand_lookahead(self.crc_statespace(spec), M),
        )

    def derby(self, spec: CRCSpec, M: int) -> DerbyTransform:
        """Derby transform for a CRC at factor M, cached."""
        return self.get(
            ("derby", spec, M),
            lambda: derby_transform(self.crc_statespace(spec), M),
        )

    def scrambler_block(self, spec: ScramblerSpec, M: int) -> Tuple[GF2Matrix, GF2Matrix]:
        """``(A^M, Y)`` for an additive scrambler — the autonomous block
        update and the M×k output matrix (row j = C A^j, stream order)."""

        def build() -> Tuple[GF2Matrix, GF2Matrix]:
            ss = self.scrambler_statespace(spec)
            return ss.A ** M, scrambler_output_matrix(ss, M)

        return self.get(("scrambler-block", spec, M), build)

    def mapped_crc(self, spec: CRCSpec, M: int, method: str = "derby", arch=None):
        """The compiled PiCoGA netlists for a CRC (see ``mapping.map_crc``).

        The returned :class:`~repro.mapping.mapper.MappedCRC` is the *same
        object* on every hit, so a :class:`~repro.picoga.array.PicogaArray`
        loading it resolves to the identical netlist — configuration reuse
        in the model mirrors configuration-cache reuse in the hardware.
        """
        from repro.mapping.mapper import map_crc
        from repro.picoga.architecture import DREAM_PICOGA

        arch = arch or DREAM_PICOGA
        return self.get(
            ("mapped-crc", spec, M, method, arch),
            lambda: map_crc(spec, M, method=method, arch=arch),
        )

    def mapped_scrambler(self, spec: ScramblerSpec, M: int, arch=None):
        """Compiled PiCoGA netlists for a scrambler, cached."""
        from repro.mapping.mapper import map_scrambler
        from repro.picoga.architecture import DREAM_PICOGA

        arch = arch or DREAM_PICOGA
        return self.get(
            ("mapped-scrambler", spec, M, arch),
            lambda: map_scrambler(spec, M, arch=arch),
        )

    def init_fold(self, spec: CRCSpec, n_bits: int) -> int:
        """``init * x^n_bits mod G`` — the linear correction that folds the
        spec's preset back into a register computed from a zero start."""
        from repro.gf2.clmul import clmulmod, clpowmod

        if spec.init == 0:
            return 0
        g = spec.generator().coeffs
        return self.get(
            ("init-fold", spec, n_bits),
            lambda: clmulmod(spec.init, clpowmod(2, n_bits, g), g),
        )


_DEFAULT = CompileCache(capacity=128)


def default_cache() -> CompileCache:
    """The process-wide shared compile cache."""
    return _DEFAULT
