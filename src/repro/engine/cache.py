"""Bounded LRU compile cache for LFSR engine artifacts.

Every parallel engine in this library starts from the same expensive
compiles: the state-space quadruple, the M-level look-ahead expansion, the
Derby change of basis (a Krylov basis plus a GF(2) inversion) and — for the
co-simulation path — the mapped PiCoGA netlists (CSE + packing + routing).
At production batch sizes these dominate end-to-end latency whenever a spec
is seen for the first time, and they are pure functions of
``(spec, M, method)``; :class:`CompileCache` memoizes them behind one
bounded LRU so repeated specs recompile at dictionary-lookup cost.

The cache is deliberately generic (``get(key, builder)``) with typed
helpers for each artifact family, and it exposes hit/miss/eviction
counters so the benchmark harness can assert near-zero recompile cost.
Residency is bounded two ways: by entry count (``capacity``) and — since
artifact cost scales with matrix area, not count — by an estimated byte
budget (``max_bytes``, see :func:`estimate_entry_bytes`), published on
the ``engine_compile_cache_bytes`` gauge.  An optional
:class:`~repro.engine.diskcache.DiskCompileCache` layer persists the
pure linear-algebra artifact families across processes, so cold CLI
invocations and pool workers warm the LRU from disk instead of
recompiling (see ``docs/PARALLEL.md``).

A module-level :func:`default_cache` instance is shared by
:class:`~repro.engine.batch.BatchCRC`, the streaming pipelines and
:class:`~repro.dream.system.DreamSystem`'s analytic mode, so heterogeneous
workloads touching the same standards share one compile.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Tuple

import numpy as np

from repro.crc.spec import CRCSpec
from repro.engine.diskcache import DiskCompileCache, default_cache_dir
from repro.errors import CompileError, ReproError, ValidationError
from repro.gf2.matrix import GF2Matrix
from repro.lfsr.lookahead import (
    LookaheadSystem,
    expand_lookahead,
    scrambler_output_matrix,
)
from repro.lfsr.statespace import LFSRStateSpace, crc_statespace, scrambler_statespace
from repro.lfsr.transform import DerbyTransform, derby_transform
from repro.scrambler.specs import ScramblerSpec
from repro.telemetry import bind_families, default_flight_recorder

# Bound lazily (see repro.telemetry.bind_families) so swapping the
# default registry after import is observed by every family below.
_METRICS = bind_families(lambda reg: {
    "lookups": reg.counter(
        "engine_compile_cache_lookups_total",
        "Compile-cache lookups by result",
        labels=("result",),
    ),
    "evictions": reg.counter(
        "engine_compile_cache_evictions_total", "Compile-cache LRU evictions"
    ),
    "entries": reg.gauge(
        "engine_compile_cache_entries", "Compiled artifacts resident across caches"
    ),
    "bytes": reg.gauge(
        "engine_compile_cache_bytes",
        "Estimated bytes of compiled artifacts resident across caches",
    ),
})

#: Artifact kinds worth persisting to a :class:`DiskCompileCache`: pure
#: linear-algebra products of ``(spec, M)`` whose pickles are small and
#: stable.  Mapped PiCoGA netlists are deliberately absent — they embed
#: architecture objects and are cheap to re-derive from these inputs.
PERSISTED_KINDS = frozenset(
    {
        "statespace",
        "scrambler-statespace",
        "lookahead",
        "derby",
        "scrambler-block",
    }
)


def estimate_entry_bytes(value: Any) -> int:
    """Estimated resident cost of one cached artifact, in bytes.

    Matrix-bearing artifacts dominate the cache, and their true cost
    scales with matrix area (an M=256 Derby transform is ~64x an M=32
    one), so entry-count capacity alone misrepresents residency.  The
    estimate walks the known artifact shapes — GF(2) matrices at one
    byte per stored entry (the uint8 backing array), numpy arrays at
    ``nbytes``, dataclasses/containers recursively — and floors at 64
    bytes of fixed per-object overhead.
    """
    return max(64, _estimate(value, depth=0))


def _estimate(value: Any, depth: int) -> int:
    """Recursive core of :func:`estimate_entry_bytes` (bounded depth)."""
    if depth > 4 or value is None:
        return 0
    if isinstance(value, GF2Matrix):
        return value.nrows * value.ncols  # uint8 entries
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bool, float)):
        return 8
    if isinstance(value, int):
        return max(8, (value.bit_length() + 7) // 8)
    if isinstance(value, (str, bytes)):
        return len(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return sum(
            _estimate(getattr(value, f.name), depth + 1)
            for f in dataclasses.fields(value)
        )
    if isinstance(value, (tuple, list)):
        return sum(_estimate(v, depth + 1) for v in value)
    if isinstance(value, dict):
        return sum(_estimate(v, depth + 1) for v in value.values())
    return 64


class CacheStats:
    """Counters exposed for benchmarks and capacity tuning.

    Increments take an internal lock so the counters stay exact when the
    pipelines drive one cache from several threads — readers see a
    consistent value regardless of who holds the cache's own lock.
    """

    __slots__ = ("_lock", "_hits", "_misses", "_evictions")

    def __init__(self, hits: int = 0, misses: int = 0, evictions: int = 0):
        self._lock = threading.Lock()
        self._hits = hits
        self._misses = misses
        self._evictions = evictions

    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to run the builder."""
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped by the LRU policy."""
        with self._lock:
            return self._evictions

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        with self._lock:
            return self._hits + self._misses

    @property
    def hit_rate(self) -> float:
        """hits / lookups (0.0 when never used)."""
        with self._lock:
            lookups = self._hits + self._misses
            return self._hits / lookups if lookups else 0.0

    def record_hit(self) -> None:
        """Count one cache hit."""
        with self._lock:
            self._hits += 1

    def record_miss(self) -> None:
        """Count one cache miss."""
        with self._lock:
            self._misses += 1

    def record_eviction(self) -> None:
        """Count one LRU eviction."""
        with self._lock:
            self._evictions += 1

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    def snapshot(self) -> dict:
        """Consistent ``{hits, misses, evictions}`` dict."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"CacheStats(hits={snap['hits']}, misses={snap['misses']}, "
            f"evictions={snap['evictions']})"
        )


class CompileCache:
    """Bounded LRU cache over ``(artifact kind, spec, M, method)`` keys.

    Thread-safe: a single lock guards the LRU order and the counters.  The
    builders themselves run outside the lock, so two threads racing on the
    same cold key may both compile — but the *first* insert wins and the
    loser's artifact is discarded, preserving the same-object identity
    guarantee that :meth:`mapped_crc` documents (a
    :class:`~repro.picoga.array.PicogaArray` must resolve repeated loads
    to the identical netlist object, like the hardware configuration
    cache serving one bitstream).
    """

    def __init__(
        self,
        capacity: int = 64,
        max_bytes: Optional[int] = None,
        disk: Optional["DiskCompileCache"] = None,
    ):
        if capacity < 1:
            raise ValidationError("cache capacity must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValidationError("cache max_bytes must be >= 1")
        self._capacity = capacity
        self._max_bytes = max_bytes
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._costs: dict = {}
        self._bytes = 0
        self._lock = threading.Lock()
        self._disk = disk
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of cached artifacts."""
        return self._capacity

    @property
    def max_bytes(self) -> Optional[int]:
        """Byte budget for resident artifacts (``None`` = unbounded)."""
        return self._max_bytes

    @property
    def size_bytes(self) -> int:
        """Estimated bytes of resident artifacts (see
        :func:`estimate_entry_bytes`)."""
        with self._lock:
            return self._bytes

    @property
    def disk(self) -> Optional["DiskCompileCache"]:
        """The persistent layer consulted on misses, if attached."""
        return self._disk

    def attach_disk(self, disk: Optional["DiskCompileCache"]) -> None:
        """Attach (or detach, with ``None``) a persistent layer.

        Later lookups of persistable artifact kinds (see
        :data:`PERSISTED_KINDS`) try the disk before compiling and
        write through after compiling.
        """
        self._disk = disk

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self):
        """Current keys, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every resident entry (stats kept, disk layer untouched)."""
        with self._lock:
            metrics = _METRICS()
            metrics["entries"].dec(len(self._entries))
            metrics["bytes"].dec(self._bytes)
            self._entries.clear()
            self._costs.clear()
            self._bytes = 0
            self.stats.reset()

    # ------------------------------------------------------------------
    def _persistable(self, key: Hashable) -> bool:
        """Whether a key's artifact family goes through the disk layer."""
        return (
            self._disk is not None
            and isinstance(key, tuple)
            and bool(key)
            and key[0] in PERSISTED_KINDS
        )

    def _insert(self, key: Hashable, value: Any) -> Tuple[Any, bool]:
        """Insert under the lock; returns ``(resident value, we_won)``.

        The first insert wins any cold-key race, preserving same-object
        identity for every caller; the byte estimate and both budget
        bounds (entry count and ``max_bytes``) are enforced here.
        """
        with self._lock:
            if key in self._entries:
                # Another thread populated the same cold key first; keep
                # its artifact so every caller holds the identical object.
                self._entries.move_to_end(key)
                return self._entries[key], False
            cost = estimate_entry_bytes(value)
            metrics = _METRICS()
            metrics["entries"].inc()
            metrics["bytes"].inc(cost)
            self._entries[key] = value
            self._costs[key] = cost
            self._bytes += cost
            while len(self._entries) > self._capacity or (
                self._max_bytes is not None
                and self._bytes > self._max_bytes
                and len(self._entries) > 1
            ):
                evicted_key, _ = self._entries.popitem(last=False)
                evicted_cost = self._costs.pop(evicted_key, 0)
                self._bytes -= evicted_cost
                self.stats.record_eviction()
                metrics["evictions"].inc()
                metrics["entries"].dec()
                metrics["bytes"].dec(evicted_cost)
        return value, True

    def get(self, key: Hashable, builder: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key``, compiling on first use.

        Misses on persistable artifact kinds consult the attached
        :class:`DiskCompileCache` (if any) before running the builder,
        and write freshly compiled artifacts through to it.  Builder
        failures are reported as :class:`~repro.errors.CompileError`
        (library-typed errors pass through unchanged); nothing is cached
        on failure.
        """
        with self._lock:
            if key in self._entries:
                self.stats.record_hit()
                _METRICS()["lookups"].labels(result="hit").inc()
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stats.record_miss()
            _METRICS()["lookups"].labels(result="miss").inc()
        persistable = self._persistable(key)
        if persistable:
            found, value = self._disk.load(key)
            if found:
                resident, _ = self._insert(key, value)
                return resident
        try:
            value = builder()
        except ReproError:
            raise
        except Exception as exc:
            raise CompileError(f"compiling cache entry {key!r} failed: {exc}") from exc
        recorder = default_flight_recorder()
        if recorder.enabled:
            family = key[0] if isinstance(key, tuple) and key else "artifact"
            recorder.record("compile", f"built cache entry {family}", artifact=str(family))
        resident, won = self._insert(key, value)
        if won and persistable:
            # Best-effort write-through; a full disk can only cost speed.
            self._disk.store(key, resident)
        return resident

    # ------------------------------------------------------------------
    # Typed helpers — one per artifact family
    # ------------------------------------------------------------------
    def crc_statespace(self, spec: CRCSpec) -> LFSRStateSpace:
        """State-space realization of a CRC generator, cached."""
        return self.get(("statespace", spec), lambda: crc_statespace(spec.generator()))

    def scrambler_statespace(self, spec: ScramblerSpec) -> LFSRStateSpace:
        """State-space realization of a scrambler polynomial, cached."""
        return self.get(
            ("scrambler-statespace", spec), lambda: scrambler_statespace(spec.poly)
        )

    def lookahead(self, spec: CRCSpec, M: int) -> LookaheadSystem:
        """M-level look-ahead expansion for a CRC, cached."""
        return self.get(
            ("lookahead", spec, M),
            lambda: expand_lookahead(self.crc_statespace(spec), M),
        )

    def derby(self, spec: CRCSpec, M: int) -> DerbyTransform:
        """Derby transform for a CRC at factor M, cached."""
        return self.get(
            ("derby", spec, M),
            lambda: derby_transform(self.crc_statespace(spec), M),
        )

    def scrambler_block(self, spec: ScramblerSpec, M: int) -> Tuple[GF2Matrix, GF2Matrix]:
        """``(A^M, Y)`` for an additive scrambler — the autonomous block
        update and the M×k output matrix (row j = C A^j, stream order)."""

        def build() -> Tuple[GF2Matrix, GF2Matrix]:
            ss = self.scrambler_statespace(spec)
            return ss.A ** M, scrambler_output_matrix(ss, M)

        return self.get(("scrambler-block", spec, M), build)

    def mapped_crc(self, spec: CRCSpec, M: int, method: str = "derby", arch=None):
        """The compiled PiCoGA netlists for a CRC (see ``mapping.map_crc``).

        The returned :class:`~repro.mapping.mapper.MappedCRC` is the *same
        object* on every hit, so a :class:`~repro.picoga.array.PicogaArray`
        loading it resolves to the identical netlist — configuration reuse
        in the model mirrors configuration-cache reuse in the hardware.
        """
        from repro.mapping.mapper import map_crc
        from repro.picoga.architecture import DREAM_PICOGA

        arch = arch or DREAM_PICOGA
        return self.get(
            ("mapped-crc", spec, M, method, arch),
            lambda: map_crc(spec, M, method=method, arch=arch),
        )

    def mapped_scrambler(self, spec: ScramblerSpec, M: int, arch=None):
        """Compiled PiCoGA netlists for a scrambler, cached."""
        from repro.mapping.mapper import map_scrambler
        from repro.picoga.architecture import DREAM_PICOGA

        arch = arch or DREAM_PICOGA
        return self.get(
            ("mapped-scrambler", spec, M, arch),
            lambda: map_scrambler(spec, M, arch=arch),
        )

    def init_fold(self, spec: CRCSpec, n_bits: int) -> int:
        """``init * x^n_bits mod G`` — the linear correction that folds the
        spec's preset back into a register computed from a zero start."""
        from repro.gf2.clmul import clmulmod, clpowmod

        if spec.init == 0:
            return 0
        g = spec.generator().coeffs
        return self.get(
            ("init-fold", spec, n_bits),
            lambda: clmulmod(spec.init, clpowmod(2, n_bits, g), g),
        )


_DEFAULT = CompileCache(capacity=128)


def default_cache() -> CompileCache:
    """The process-wide shared compile cache.

    If ``$REPRO_CACHE_DIR`` names a directory and no persistent layer is
    attached yet, one is attached on first use, so every engine built
    through the default cache warms from (and feeds) the disk.
    """
    if _DEFAULT.disk is None:
        root = default_cache_dir()
        if root is not None:
            _DEFAULT.attach_disk(DiskCompileCache(root))
    return _DEFAULT
