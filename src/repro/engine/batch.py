"""Bit-packed numpy batch kernels for LFSR applications.

The paper exploits the linearity of the M-bit recurrence *spatially* — one
PiCoGA operation computes ``x(n+M) = A^M x(n) + B_M u_M(n)`` in a single
pipeline slot.  This module exploits the same structure *temporally*: B
independent messages advance through the recurrence simultaneously, with
the batch dimension bit-sliced into 64-bit machine words.

Layout: the batch dimension is delegated to a pluggable GF(2) kernel
backend (:mod:`repro.gf2.backend`).  Under the default ``"packed"``
backend a batch of B bit-streams is a ``(n_bits, W)`` ``uint64`` array
with ``W = ceil(B/64)`` — bit *b* of word ``row[b // 64]`` belongs to
stream *b* — and a GF(2) matrix-vector product over the whole batch is
``r`` XOR-reductions of W-word rows, so one numpy call advances all B
streams by M bits.  The ``"reference"`` backend runs the same contract
bit-by-bit over Python ints (the auditable ground truth); select with
the ``backend=`` constructor argument or ``$REPRO_GF2_BACKEND``.

Tail contract (identical to :class:`repro.dream.system.DreamSystem`):
streams are zero-padded **at the head** to a multiple of M and run from a
zero register, which makes the pad transparent (leading zeros do not change
the message polynomial); the spec's ``init`` preset is folded back in with
the linear correction ``reg = raw0 ^ (init * x^N mod G)`` per stream, using
each stream's true bit length N.
"""

from __future__ import annotations

from collections import deque
from functools import reduce
from time import perf_counter
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.crc.spec import CRCSpec
from repro.engine.cache import CompileCache, default_cache
from repro.errors import SpecError
from repro.gf2.backend import GF2Backend, WORD_BITS, get_backend, resolve_backend
from repro.gf2.polynomial import GF2Polynomial
from repro.lfsr.wordlfsr import WORD64, WordLFSR, WordLFSRSpec, seed_words_from_bytes
from repro.scrambler.specs import ScramblerSpec
from repro.telemetry import bind_families, default_registry
from repro.validation import (
    check_bit_streams,
    check_factor,
    check_messages,
    check_method,
    check_register_list,
)

# Bound lazily (see repro.telemetry.bind_families) so swapping the
# default registry after import is observed by every family below.
_METRICS = bind_families(lambda reg: {
    "calls": reg.counter(
        "engine_batch_calls_total", "Vectorized batch kernel invocations",
        labels=("kernel",),
    ),
    "bits_total": reg.counter(
        "engine_batch_bits_total", "Payload bits processed by the batch kernels",
        labels=("kernel",),
    ),
    "call_bits": reg.histogram(
        "engine_batch_call_bits", "Payload bits per batch kernel call",
        labels=("kernel",),
        buckets=(64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 1 << 22, 1 << 24),
    ),
    "throughput": reg.histogram(
        "engine_batch_throughput_mbps", "Per-call bit throughput (Mbit/s)",
        labels=("kernel",),
        buckets=(1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000),
    ),
})


def _observe_kernel(kernel: str, bits: int, seconds: float) -> None:
    """Publish one batch call's size and rate (registry already enabled)."""
    metrics = _METRICS()
    metrics["calls"].labels(kernel=kernel).inc()
    metrics["bits_total"].labels(kernel=kernel).inc(bits)
    metrics["call_bits"].labels(kernel=kernel).observe(bits)
    if seconds > 0:
        metrics["throughput"].labels(kernel=kernel).observe(bits / seconds / 1e6)


def _n_words(batch: int) -> int:
    """Packed uint64 words per batch row in the numpy layout."""
    return (batch + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(n, B)`` 0/1 array into ``(n, ceil(B/64))`` uint64 words.

    Stream *b* occupies bit ``b % 64`` of word ``b // 64`` in each row.
    Kept as the numpy-layout entry point for the streaming pipelines; the
    canonical implementation lives in :mod:`repro.gf2.backend`.
    """
    return get_backend("packed").pack(bits)


def unpack_bits(packed: np.ndarray, batch: int) -> np.ndarray:
    """Inverse of :func:`pack_bits` — recover the ``(n, batch)`` bit array."""
    return get_backend("packed").unpack(packed, batch)


def gf2_mul_packed(matrix: np.ndarray, packed: np.ndarray) -> np.ndarray:
    """GF(2) product of an ``(r, c)`` 0/1 matrix with packed ``(c, W)`` rows.

    Row *i* of the result is the XOR of the packed rows selected by the ones
    in matrix row *i* — one vectorized select-and-reduce, no per-stream loop.
    """
    return get_backend("packed").matvec_batch(matrix, packed)


def _registers_from_bits(bits: np.ndarray, batch: int) -> List[int]:
    """Per-stream register integers from a ``(k, batch)`` state bit array."""
    by_stream = np.packbits(bits, axis=0, bitorder="little")  # (ceil(k/8), batch)
    return [int.from_bytes(by_stream[:, b].tobytes(), "little") for b in range(batch)]


class BatchCRC:
    """CRC over B independent messages in one vectorized pass.

    ``method`` selects the recurrence basis: ``"lookahead"`` steps the
    natural-basis ``(A^M, B_M)`` system; ``"derby"`` steps the transformed
    ``(A_Mt, B_Mt)`` system and anti-transforms once at the end — both are
    bit-for-bit identical to :class:`repro.crc.bitwise.BitwiseCRC`.
    ``backend`` selects the GF(2) kernel set (name, instance, or ``None``
    for the :mod:`repro.gf2.backend` default).
    """

    def __init__(
        self,
        spec: CRCSpec,
        M: int,
        method: str = "lookahead",
        cache: Optional[CompileCache] = None,
        backend: Union[None, str, GF2Backend] = None,
    ):
        self._spec = spec
        self._M = check_factor(M, what="look-ahead factor M")
        self._method = check_method(method)
        self._cache = cache if cache is not None else default_cache()
        self._backend = resolve_backend(backend)
        if method == "derby":
            dt = self._cache.derby(spec, M)
            update, inject = dt.A_Mt, dt.B_Mt
            self._anti = dt.T.to_array()
        else:
            la = self._cache.lookahead(spec, M)
            update, inject = la.A_M, la.B_M
            self._anti = None
        # One fused step matrix [A | B'] with B's columns reversed so the
        # input block can be supplied in stream order (u(n) first).
        self._step = np.hstack([update.to_array(), inject.to_array()[:, ::-1]])
        self._k = spec.width

    @property
    def spec(self) -> CRCSpec:
        """The CRC standard this engine computes."""
        return self._spec

    @property
    def M(self) -> int:
        """Look-ahead block factor (bits consumed per block step)."""
        return self._M

    @property
    def method(self) -> str:
        """Block recurrence in use: ``"lookahead"`` or ``"derby"``."""
        return self._method

    @property
    def cache(self) -> CompileCache:
        """The compile cache the block matrices come from."""
        return self._cache

    @property
    def backend(self) -> GF2Backend:
        """The GF(2) kernel backend the block loop runs on."""
        return self._backend

    # ------------------------------------------------------------------
    def _raw_from_stream(
        self,
        stream: np.ndarray,
        lengths: Sequence[int],
        fold_init: bool = True,
    ) -> List[int]:
        """Registers for a head-aligned ``(padded_len, batch)`` bit matrix."""
        batch = len(lengths)
        be = self._backend
        state = be.pack(np.zeros((self._k, batch), dtype=np.uint8))
        if stream.shape[0]:
            packed = be.pack(stream)
            for off in range(0, stream.shape[0], self._M):
                stacked = be.concat([state, packed[off : off + self._M]])
                state = be.matvec_batch(self._step, stacked)
        if self._anti is not None:
            state = be.matvec_batch(self._anti, state)
        raw0 = _registers_from_bits(be.unpack(state, batch), batch)
        if not fold_init:
            return raw0
        folds = {n: self._cache.init_fold(self._spec, n) for n in set(lengths)}
        return [raw ^ folds[n] for raw, n in zip(raw0, lengths)]

    def _padded_length(self, longest: int) -> int:
        return -(-longest // self._M) * self._M if longest else 0

    def raw_registers_bits(
        self,
        bit_streams: Sequence[Sequence[int]],
        fold_init: bool = True,
    ) -> List[int]:
        """Raw (pre-finalize) registers for raw bit streams of any lengths.

        ``fold_init=False`` skips the per-stream init correction and
        returns zero-start registers — the shard form the parallel
        layer's ``x^k`` combine (see :mod:`repro.engine.parallel`)
        composes, since only the *first* shard of a message carries the
        spec preset.
        """
        checked = check_bit_streams(bit_streams)
        batch = len(checked)
        if batch == 0:
            return []
        telemetry = default_registry().enabled
        t0 = perf_counter() if telemetry else 0.0
        lengths = [len(bits) for bits in checked]
        padded_len = self._padded_length(max(lengths))
        stream = np.zeros((padded_len, batch), dtype=np.uint8)
        for b, bits in enumerate(checked):
            if lengths[b]:
                stream[padded_len - lengths[b] :, b] = bits
        registers = self._raw_from_stream(stream, lengths, fold_init=fold_init)
        if telemetry:
            _observe_kernel(f"crc-{self._method}", sum(lengths), perf_counter() - t0)
        return registers

    def compute_bits_batch(self, bit_streams: Sequence[Sequence[int]]) -> List[int]:
        """Finalized CRCs of raw bit streams (transmission order)."""
        return [self._spec.finalize(r) for r in self.raw_registers_bits(bit_streams)]

    def raw_registers(self, messages: Sequence[bytes]) -> List[int]:
        """Raw registers for byte messages, bypassing per-bit Python lists.

        Byte-to-bit expansion runs through :func:`numpy.unpackbits` (with the
        spec's per-byte reflection), and equal-length batches expand in one
        reshaped call — this is the production hot path.
        """
        messages = check_messages(messages)
        batch = len(messages)
        if batch == 0:
            return []
        telemetry = default_registry().enabled
        t0 = perf_counter() if telemetry else 0.0
        lengths = [8 * len(m) for m in messages]
        padded_len = self._padded_length(max(lengths))
        stream = np.zeros((padded_len, batch), dtype=np.uint8)
        bitorder = "little" if self._spec.refin else "big"
        if len(set(lengths)) == 1 and lengths[0]:
            flat = np.frombuffer(b"".join(messages), dtype=np.uint8)
            bits = np.unpackbits(flat.reshape(batch, -1), axis=1, bitorder=bitorder)
            stream[padded_len - lengths[0] :, :] = bits.T
        else:
            for b, m in enumerate(messages):
                if m:
                    stream[padded_len - lengths[b] :, b] = np.unpackbits(
                        np.frombuffer(m, dtype=np.uint8), bitorder=bitorder
                    )
        registers = self._raw_from_stream(stream, lengths)
        if telemetry:
            _observe_kernel(f"crc-{self._method}", sum(lengths), perf_counter() - t0)
        return registers

    def compute_batch(self, messages: Sequence[bytes]) -> List[int]:
        """Finalized CRCs of B byte messages (lengths may differ)."""
        return [self._spec.finalize(r) for r in self.raw_registers(messages)]

    def compute(self, data: bytes) -> int:
        """Single-message convenience (a batch of one)."""
        return self.compute_batch([data])[0]


class BatchAdditiveScrambler:
    """Frame-synchronous scrambling of B independent streams at once.

    Per-stream seeds are supported (each column of the packed state holds
    one stream's register); the keystream block is ``Y @ state`` and the
    autonomous update ``A^M @ state``, both batched through the selected
    GF(2) backend's block kernel.  Scrambling is an involution, so
    descrambling is the same call.
    """

    def __init__(
        self,
        spec: ScramblerSpec,
        M: int,
        cache: Optional[CompileCache] = None,
        backend: Union[None, str, GF2Backend] = None,
    ):
        self._spec = spec
        self._M = check_factor(M, what="block factor M")
        self._cache = cache if cache is not None else default_cache()
        self._backend = resolve_backend(backend)
        A_M, Y = self._cache.scrambler_block(spec, M)
        self._A = A_M.to_array()
        self._Y = Y.to_array()
        self._ss = self._cache.scrambler_statespace(spec)

    @property
    def spec(self) -> ScramblerSpec:
        """The scrambler standard (polynomial + default seed)."""
        return self._spec

    @property
    def M(self) -> int:
        """Keystream bits produced per block step."""
        return self._M

    @property
    def backend(self) -> GF2Backend:
        """The GF(2) kernel backend the block loop runs on."""
        return self._backend

    # ------------------------------------------------------------------
    def _check_seeds(self, batch: int, seeds: Optional[Sequence[int]]) -> List[int]:
        """Validated per-stream seeds (spec default when omitted)."""
        if seeds is None:
            return [self._spec.seed] * batch
        return check_register_list(
            seeds, batch, self._ss.order, what="seeds", allow_zero=False
        )

    def _initial_state(self, seeds: Sequence[int]):
        cols = [self._ss.state_from_int(s) for s in seeds]
        return self._backend.pack(np.stack(cols, axis=1))

    def keystream_batch(self, nbits: int, batch: int, seeds: Optional[Sequence[int]] = None) -> np.ndarray:
        """``(nbits, batch)`` keystream bits, one column per stream."""
        telemetry = default_registry().enabled
        t0 = perf_counter() if telemetry else 0.0
        be = self._backend
        state = self._initial_state(self._check_seeds(batch, seeds))
        blocks = -(-nbits // self._M) if nbits else 0
        parts = []
        for _ in range(blocks):
            parts.append(be.matvec_batch(self._Y, state))
            state = be.matvec_batch(self._A, state)
        if telemetry:
            _observe_kernel("scrambler-additive", nbits * batch, perf_counter() - t0)
        if not blocks:
            return np.zeros((0, batch), dtype=np.uint8)
        return be.unpack(be.concat(parts), batch)[:nbits]

    def scramble_batch(
        self,
        bit_streams: Sequence[Sequence[int]],
        seeds: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        # Validate arguments *before* any early return, so an invalid seed
        # list is rejected even when every stream happens to be empty.
        """XOR each stream with its keystream; returns per-stream bit lists."""
        checked = check_bit_streams(bit_streams)
        batch = len(checked)
        seeds = self._check_seeds(batch, seeds)
        if batch == 0:
            return []
        lengths = [len(bits) for bits in checked]
        longest = max(lengths)
        if longest == 0:
            return [[] for _ in checked]
        # Tail padding is safe here: the keystream never depends on the data.
        data = np.zeros((longest, batch), dtype=np.uint8)
        for b, bits in enumerate(checked):
            if lengths[b]:
                data[: lengths[b], b] = bits
        ks = self.keystream_batch(longest, batch, seeds)
        out = data ^ ks
        return [out[: lengths[b], b].tolist() for b in range(batch)]

    def descramble_batch(
        self,
        bit_streams: Sequence[Sequence[int]],
        seeds: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        """Identical to :meth:`scramble_batch` (XOR is an involution)."""
        return self.scramble_batch(bit_streams, seeds)


class BatchWordScrambler:
    """Frame-synchronous scrambling of B streams on word-oriented keystreams.

    An alternative keystream source to :class:`BatchAdditiveScrambler`:
    instead of expanding a catalog LFSR through ``Y``/``A^M`` block
    matrices, each stream gets its own Tsaban–Vishne
    :class:`~repro.lfsr.wordlfsr.WordLFSR` emitting one machine word per
    step, and the batch XOR runs as one numpy operation.  Per-stream seeds
    are word lists or byte material (stretched through
    :func:`~repro.lfsr.wordlfsr.seed_words_from_bytes`); omitted seeds
    derive deterministically from the stream index, so repeated calls are
    reproducible.  Scrambling is an involution — descrambling is the same
    call with the same seeds.
    """

    def __init__(self, spec: WordLFSRSpec = WORD64):
        self._spec = spec

    @property
    def spec(self) -> WordLFSRSpec:
        """The word-LFSR configuration every stream's keystream runs."""
        return self._spec

    # ------------------------------------------------------------------
    def _check_seeds(self, batch: int, seeds) -> List[List[int]]:
        """Per-stream word seeds (index-derived defaults when omitted)."""
        if seeds is None:
            return [
                seed_words_from_bytes(self._spec, b"stream-%d" % b)
                for b in range(batch)
            ]
        if len(seeds) != batch:
            raise SpecError(f"expected {batch} seeds, got {len(seeds)}")
        out = []
        for s in seeds:
            if isinstance(s, (bytes, bytearray, memoryview)):
                out.append(seed_words_from_bytes(self._spec, bytes(s)))
            else:
                out.append(list(s))
        return out

    def keystream_batch(
        self, nbits: int, batch: int, seeds=None
    ) -> np.ndarray:
        """``(nbits, batch)`` keystream bits, one word-LFSR per column."""
        telemetry = default_registry().enabled
        t0 = perf_counter() if telemetry else 0.0
        seeds = self._check_seeds(batch, seeds)
        if nbits == 0 or batch == 0:
            return np.zeros((nbits, batch), dtype=np.uint8)
        cols = [
            WordLFSR(self._spec, seed).keystream_bits(nbits) for seed in seeds
        ]
        out = np.stack(cols, axis=1)
        if telemetry:
            _observe_kernel("scrambler-word", nbits * batch, perf_counter() - t0)
        return out

    def scramble_batch(
        self,
        bit_streams: Sequence[Sequence[int]],
        seeds=None,
    ) -> List[List[int]]:
        """XOR each stream with its keystream; returns per-stream bit lists."""
        # Validate arguments *before* any early return, so an invalid seed
        # list is rejected even when every stream happens to be empty.
        checked = check_bit_streams(bit_streams)
        batch = len(checked)
        seeds = self._check_seeds(batch, seeds)
        if batch == 0:
            return []
        lengths = [len(bits) for bits in checked]
        longest = max(lengths)
        if longest == 0:
            return [[] for _ in checked]
        # Tail padding is safe here: the keystream never depends on the data.
        data = np.zeros((longest, batch), dtype=np.uint8)
        for b, bits in enumerate(checked):
            if lengths[b]:
                data[: lengths[b], b] = bits
        ks = self.keystream_batch(longest, batch, seeds)
        out = data ^ ks
        return [out[: lengths[b], b].tolist() for b in range(batch)]

    def descramble_batch(
        self,
        bit_streams: Sequence[Sequence[int]],
        seeds=None,
    ) -> List[List[int]]:
        """Identical to :meth:`scramble_batch` (XOR is an involution)."""
        return self.scramble_batch(bit_streams, seeds)


class BatchMultiplicativeScrambler:
    """Self-synchronizing scrambler over B streams, bit-serial in time but
    word-parallel across the batch.

    The feedback taps read the *scrambled* stream, so time stays serial —
    but each clock is a handful of W-word XORs instead of B Python-level
    shifts.  Matches :class:`repro.scrambler.multiplicative.MultiplicativeScrambler`
    bit-for-bit per stream.
    """

    def __init__(
        self,
        poly: GF2Polynomial,
        backend: Union[None, str, GF2Backend] = None,
    ):
        if poly.degree < 1:
            raise SpecError("polynomial degree must be >= 1")
        self._poly = poly
        self._k = poly.degree
        self._backend = resolve_backend(backend)
        # Delay positions, as in the serial engine: exponent t reads the
        # stream bit from t clocks ago (delay-line slot t-1).
        self._taps = [
            t - 1 for t in range(1, self._k + 1) if t == self._k or poly.coefficient(t)
        ]

    @property
    def poly(self) -> GF2Polynomial:
        """The generator polynomial ``g(x)``."""
        return self._poly

    @property
    def backend(self) -> GF2Backend:
        """The GF(2) kernel backend the delay lines run on."""
        return self._backend

    # ------------------------------------------------------------------
    def _check_states(self, batch: int, states: Optional[Sequence[int]]) -> List[int]:
        """Validated per-stream delay-line presets (zero when omitted)."""
        if states is None:
            return [0] * batch
        return check_register_list(
            states, batch, self._k, what="states", allow_zero=True
        )

    def _delay_lines(self, states: Sequence[int]) -> deque:
        rows = np.zeros((self._k, len(states)), dtype=np.uint8)
        for b, s in enumerate(states):
            for j in range(self._k):
                rows[j, b] = (s >> j) & 1
        packed = self._backend.pack(rows)
        return deque(packed[j] for j in range(self._k))

    def _run(
        self,
        bit_streams: Sequence[Sequence[int]],
        states: Optional[Sequence[int]],
        descramble: bool,
    ) -> List[List[int]]:
        # Validate arguments *before* any early return, so an invalid state
        # list is rejected even when every stream happens to be empty.
        checked = check_bit_streams(bit_streams)
        batch = len(checked)
        states = self._check_states(batch, states)
        if batch == 0:
            return []
        telemetry = default_registry().enabled
        t0 = perf_counter() if telemetry else 0.0
        lengths = [len(bits) for bits in checked]
        longest = max(lengths)
        if longest == 0:
            return [[] for _ in checked]
        data = np.zeros((longest, batch), dtype=np.uint8)
        for b, bits in enumerate(checked):
            if lengths[b]:
                data[: lengths[b], b] = bits
        be = self._backend
        packed = be.pack(data)
        line = self._delay_lines(states)
        out_rows = []
        for n in range(longest):
            fb = reduce(lambda acc, pos: acc ^ line[pos], self._taps[1:], line[self._taps[0]])
            row = packed[n] ^ fb
            out_rows.append(row)
            # The delay line shifts in the *scrambled* stream bit on both
            # sides of the link (received when descrambling, produced when
            # scrambling) — that is what makes the pair self-synchronizing.
            shift_in = packed[n] if descramble else row
            line.pop()
            line.appendleft(shift_in)
        bits_out = be.unpack(be.from_rows(out_rows), batch)
        if telemetry:
            _observe_kernel(
                "scrambler-multiplicative", sum(lengths), perf_counter() - t0
            )
        return [bits_out[: lengths[b], b].tolist() for b in range(batch)]

    def scramble_batch(
        self, bit_streams: Sequence[Sequence[int]], states: Optional[Sequence[int]] = None
    ) -> List[List[int]]:
        """``s = u ^ taps(delay)``, feeding back ``s`` (1/g(x) transfer)."""
        return self._run(bit_streams, states, descramble=False)

    def descramble_batch(
        self, bit_streams: Sequence[Sequence[int]], states: Optional[Sequence[int]] = None
    ) -> List[List[int]]:
        """``u = s ^ taps(delay)``, feeding forward ``s`` (g(x) transfer)."""
        return self._run(bit_streams, states, descramble=True)
