"""Chunked streaming front-end over the batch kernels.

Production traffic rarely arrives as neatly pre-collected batches: frames
stream in, interleaved across thousands of connections, and each message
may span many chunks.  :class:`CRCPipeline` and :class:`ScramblerPipeline`
expose the classic feed/finalize interface per stream while sharing the
compile cache and the bit-packed kernels underneath — each ``pump`` round
gathers one M-bit block from every stream that has one buffered and
advances them all with a single packed matrix product, exactly the
Kong–Parhi interleaving the paper uses to hide the loop latency (Fig. 5),
re-enacted in numpy.

Streams keep their state in the engine's working basis (natural for
``"lookahead"``, transformed for ``"derby"``); sub-block tails are finished
serially at ``finalize`` like :class:`repro.crc.parallel.DerbyCRC` does.

Error semantics: unknown / duplicate stream ids raise
:class:`repro.errors.StreamError`; malformed arguments (non-bit values,
wrong-width registers or seeds, bad factors) raise
:class:`repro.errors.ValidationError`.

Telemetry: the ``engine_pipeline_streams`` / ``engine_pipeline_pending_bits``
gauges are published by *reconciliation* — after every mutation each
pipeline pushes the delta between its true totals and what it last
published.  That keeps increments and decrements symmetric even when the
registry is toggled mid-stream (a naive inc-on-feed/dec-on-pump pairing
drifts permanently if telemetry flips between the two calls).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.crc.bitwise import BitwiseCRC
from repro.crc.spec import CRCSpec
from repro.crc.table import TableCRC
from repro.engine.batch import gf2_mul_packed, pack_bits, unpack_bits
from repro.engine.cache import CompileCache, default_cache
from repro.errors import StreamError, ValidationError
from repro.scrambler.specs import ScramblerSpec
from repro.telemetry import bind_families, default_registry
from repro.validation import check_bits, check_factor, check_method, check_register, check_seed

# Aggregate gauges: published by per-instance deltas so any number of
# concurrent pipeline instances sum correctly into one series per kind.
# Bound lazily so a registry swapped in via set_default_registry() after
# import is still observed.
_METRICS = bind_families(lambda reg: {
    "streams": reg.gauge(
        "engine_pipeline_streams", "Streams currently open across pipelines",
        labels=("kind",),
    ),
    "pending": reg.gauge(
        "engine_pipeline_pending_bits",
        "Input bits buffered and awaiting a full M-bit block",
        labels=("kind",),
    ),
    "blocks": reg.counter(
        "engine_pipeline_blocks_total", "M-bit blocks advanced by pump rounds",
        labels=("kind",),
    ),
    "pump_blocks": reg.histogram(
        "engine_pipeline_blocks_per_pump", "Blocks advanced per pump() call",
        labels=("kind",),
        buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024),
    ),
})


class _GaugePublisher:
    """Reconciles one pipeline's stream/pending totals into the gauges.

    Remembers what this instance last pushed and publishes only the
    difference, so toggling the registry between a feed and the matching
    pump can never leave the shared gauges negative or inflated: the next
    mutation while telemetry is enabled re-syncs them.
    """

    __slots__ = ("_kind", "_streams", "_pending")

    def __init__(self, kind: str):
        self._kind = kind
        self._streams = 0
        self._pending = 0

    def publish(self, streams: int, pending: int) -> None:
        if not default_registry().enabled:
            return
        metrics = _METRICS()
        if streams != self._streams:
            metrics["streams"].labels(kind=self._kind).inc(streams - self._streams)
            self._streams = streams
        if pending != self._pending:
            metrics["pending"].labels(kind=self._kind).inc(pending - self._pending)
            self._pending = pending


class _BitBuffer:
    """FIFO of pending message bits held as uint8 numpy chunks.

    The serving hot path moves thousands of bits per call; a plain
    ``List[int]`` buffer pays one Python object per bit on every feed
    (``tolist``), every pump gather (list-slice copy into the block
    matrix) and every tail drain.  Keeping the bits as the uint8 arrays
    ``np.unpackbits`` already produced makes feed O(1) appends and pump
    gathers single vectorized copies — measured ~6× cheaper per round
    at M=4096 — without changing any observable pipeline behavior.
    """

    __slots__ = ("_chunks", "_length")

    def __init__(self):
        self._chunks: deque = deque()
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def append(self, bits: np.ndarray) -> None:
        """Queue a 1-D uint8 bit array (kept by reference, not copied)."""
        if len(bits):
            self._chunks.append(bits)
            self._length += len(bits)

    def take(self, n: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Pop the first ``n`` bits (into ``out`` when given)."""
        if out is None:
            out = np.empty(n, dtype=np.uint8)
        pos = 0
        while pos < n:
            chunk = self._chunks[0]
            need = n - pos
            if len(chunk) <= need:
                out[pos:pos + len(chunk)] = chunk
                pos += len(chunk)
                self._chunks.popleft()
            else:
                out[pos:] = chunk[:need]
                self._chunks[0] = chunk[need:]
                pos = n
        self._length -= n
        return out

    def drain(self) -> np.ndarray:
        """Pop every remaining bit as one array (the finalize tail)."""
        if not self._chunks:
            return np.empty(0, dtype=np.uint8)
        if len(self._chunks) == 1:
            tail = self._chunks.popleft()
        else:
            tail = np.concatenate(self._chunks)
            self._chunks.clear()
        self._length = 0
        return tail


@dataclass
class _CRCStream:
    state: np.ndarray  # (k,) uint8, in the engine's working basis
    buffer: _BitBuffer = field(default_factory=_BitBuffer)


class CRCPipeline:
    """Many concurrent CRC streams sharing one compiled recurrence."""

    def __init__(
        self,
        spec: CRCSpec,
        M: int,
        method: str = "lookahead",
        cache: Optional[CompileCache] = None,
    ):
        self._spec = spec
        self._M = check_factor(M, what="look-ahead factor M")
        self._method = check_method(method)
        self._cache = cache if cache is not None else default_cache()
        self._ss = self._cache.crc_statespace(spec)
        if method == "derby":
            dt = self._cache.derby(spec, M)
            update, inject = dt.A_Mt, dt.B_Mt
            self._into_basis = dt.T_inv.to_array()
            self._from_basis = dt.T.to_array()
        else:
            la = self._cache.lookahead(spec, M)
            update, inject = la.A_M, la.B_M
            self._into_basis = self._from_basis = None
        self._step = np.hstack([update.to_array(), inject.to_array()[:, ::-1]])
        self._serial = BitwiseCRC(spec)
        # Byte-at-a-time tail engine for finalize: any 8 consecutive
        # transmission-order bits regroup into one byte under the spec's
        # input reflection, so the table engine can chew the byte-aligned
        # part of a sub-block tail ~8x faster than the bit-serial core.
        # Mixed-reflection specs keep the bit-serial path (mirrors the
        # TableCRC routing for them).
        self._table_tail = (
            TableCRC(spec)
            if spec.refin == spec.refout and (spec.refin or spec.width >= 8)
            else None
        )
        self._streams: Dict[Hashable, _CRCStream] = {}
        self._auto_ids = count()
        self._gauges = _GaugePublisher("crc")

    @property
    def spec(self) -> CRCSpec:
        """The CRC standard every stream in this pipeline computes."""
        return self._spec

    @property
    def M(self) -> int:
        """Block factor: bits consumed per stream per pump step."""
        return self._M

    @property
    def cache(self) -> CompileCache:
        """The compile cache block matrices come from."""
        return self._cache

    def __len__(self) -> int:
        return len(self._streams)

    @property
    def stream_count(self) -> int:
        """Number of streams currently open."""
        return len(self._streams)

    def _stream(self, stream_id: Hashable) -> _CRCStream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise StreamError(
                f"unknown CRC stream {stream_id!r}: open() it first "
                f"({len(self._streams)} streams currently open)"
            ) from None

    def _publish(self) -> None:
        self._gauges.publish(
            len(self._streams),
            sum(len(s.buffer) for s in self._streams.values()),
        )

    def pending_bits(self, stream_id: Optional[Hashable] = None) -> int:
        """Buffered input bits awaiting processing — the pipeline backlog.

        With ``stream_id`` the count is that stream's alone; without it,
        the total across every open stream.  Bits below one full M-bit
        block stay pending until ``finalize`` drains them serially.
        """
        if stream_id is not None:
            return len(self._stream(stream_id).buffer)
        return sum(len(s.buffer) for s in self._streams.values())

    # ------------------------------------------------------------------
    def open(self, stream_id: Optional[Hashable] = None, register: Optional[int] = None) -> Hashable:
        """Start a stream; returns its id (auto-allocated when omitted)."""
        if stream_id is None:
            stream_id = next(self._auto_ids)
        if stream_id in self._streams:
            raise StreamError(f"stream {stream_id!r} is already open")
        if register is None:
            reg = self._spec.init
        else:
            reg = check_register(register, self._spec.width, what="register")
        state = self._ss.state_from_int(reg)
        if self._into_basis is not None:
            state = ((self._into_basis.astype(np.int64) @ state) & 1).astype(np.uint8)
        self._streams[stream_id] = _CRCStream(state=state)
        self._publish()
        return stream_id

    def feed(self, stream_id: Hashable, data: bytes, pump: bool = True) -> None:
        """Append message bytes to a stream (chunked calls compose).

        Bytes expand to bits vectorized (``np.unpackbits`` honouring the
        spec's input reflection) rather than through the per-bit
        ``message_bits`` path — bytes are inherently valid bits, and this
        is the serve layer's hot path.
        """
        stream = self._stream(stream_id)
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise ValidationError(
                f"message must be bytes-like, got {type(data).__name__}"
            )
        if len(data):
            # Zero-copy expansion: np.frombuffer reads bytes, bytearray and
            # memoryview buffers in place — no intermediate bytes() copy on
            # the serving hot path.
            bits = np.unpackbits(
                np.frombuffer(data, dtype=np.uint8),
                bitorder="little" if self._spec.refin else "big",
            )
            stream.buffer.append(bits)
            self._publish()
        if pump:
            self.pump()

    def feed_bits(self, stream_id: Hashable, bits: Sequence[int], pump: bool = True) -> None:
        """Append raw message bits to a stream (chunked calls compose)."""
        stream = self._stream(stream_id)
        stream.buffer.append(check_bits(bits))
        self._publish()
        if pump:
            self.pump()

    # ------------------------------------------------------------------
    def pump(self) -> int:
        """Advance every stream with at least one full M-bit block buffered.

        All ready streams step together through one packed matrix product
        per round (numpy's re-enactment of interleaved issue).  Returns the
        number of blocks processed.
        """
        processed = 0
        while True:
            ready = [
                (sid, s) for sid, s in self._streams.items() if len(s.buffer) >= self._M
            ]
            if not ready:
                self._publish()
                if default_registry().enabled:
                    metrics = _METRICS()
                    metrics["blocks"].labels(kind="crc").inc(processed)
                    metrics["pump_blocks"].labels(kind="crc").observe(processed)
                return processed
            states = pack_bits(np.stack([s.state for _, s in ready], axis=1))
            blocks = np.empty((self._M, len(ready)), dtype=np.uint8)
            for col, (_, s) in enumerate(ready):
                s.buffer.take(self._M, out=blocks[:, col])
            stacked = np.vstack([states, pack_bits(blocks)])
            new_states = unpack_bits(gf2_mul_packed(self._step, stacked), len(ready))
            for col, (_, s) in enumerate(ready):
                s.state = new_states[:, col].copy()
            processed += len(ready)

    def finalize(self, stream_id: Hashable) -> int:
        """Drain the stream (serial sub-block tail) and return its CRC."""
        self.pump()
        crc = self._finalize_drained(stream_id)
        self._publish()
        return crc

    def finalize_many(self, stream_ids: Sequence[Hashable]) -> List[int]:
        """Finalize several streams behind **one** pump round.

        ``finalize`` costs one :meth:`pump` per call even when the pump
        advances a single stream — the packed matrix product is the same
        width either way, so B individual finalizes pay B full-width
        products where one would do.  This entry point validates every
        id up front (all-or-nothing: an unknown or duplicated id raises
        before any stream is consumed), pumps once to advance all of
        them together, then drains each sub-block tail serially.
        Results align with ``stream_ids`` order.  This is the wide call
        the serve path's micro-batch runner packs a round's digests
        into.
        """
        ids = list(stream_ids)
        if len(set(ids)) != len(ids):
            raise ValidationError(
                f"finalize_many got duplicate stream ids in {ids!r}"
            )
        for sid in ids:
            self._stream(sid)
        self.pump()
        crcs = [self._finalize_drained(sid) for sid in ids]
        if crcs:
            self._publish()
        return crcs

    def _finalize_drained(self, stream_id: Hashable) -> int:
        """Consume an already-pumped stream: tail drain + final XOR.

        Caller is responsible for :meth:`pump` beforehand and
        ``_publish`` afterwards (batched callers publish once per
        round, not once per stream).
        """
        stream = self._stream(stream_id)
        del self._streams[stream_id]
        state = stream.state
        if self._from_basis is not None:
            state = ((self._from_basis.astype(np.int64) @ state) & 1).astype(np.uint8)
        register = self._ss.state_to_int(state)
        tail = stream.buffer.drain()
        if self._table_tail is not None and len(tail) >= 8:
            aligned = (len(tail) // 8) * 8
            packed = np.packbits(
                tail[:aligned],
                bitorder="little" if self._spec.refin else "big",
            ).tobytes()
            register = self._table_tail.raw_register(packed, register)
            tail = tail[aligned:]
        register = self._serial.process_bits(register, tail.tolist())
        return self._spec.finalize(register)

    def abort(self, stream_id: Hashable) -> None:
        """Drop a stream without computing its CRC."""
        self._stream(stream_id)
        del self._streams[stream_id]
        self._publish()

    def migrate(self, stream_id: Hashable, target: "CRCPipeline") -> None:
        """Move one open stream (state + buffered bits) into ``target``.

        Both pipelines must run the same ``(spec, M, method)`` so the
        stream's working-basis state means the same thing on either side
        — this is the primitive the sharded execution layer's
        work-stealing scheduler uses to rebalance shards
        (:class:`repro.engine.parallel.ShardedCRCPipeline`).
        """
        if target is self:
            return
        if (
            target._spec != self._spec
            or target._M != self._M
            or target._method != self._method
        ):
            raise StreamError(
                f"cannot migrate stream {stream_id!r}: pipelines disagree on "
                f"(spec, M, method)"
            )
        stream = self._stream(stream_id)
        if stream_id in target._streams:
            raise StreamError(
                f"stream {stream_id!r} is already open in the target pipeline"
            )
        del self._streams[stream_id]
        target._streams[stream_id] = stream
        self._publish()
        target._publish()


@dataclass
class _ScramblerStream:
    state: np.ndarray  # (k,) uint8, natural basis
    keystream: List[int] = field(default_factory=list)


class ScramblerPipeline:
    """Many concurrent additive-scrambler streams on one cached compile.

    ``feed`` returns the scrambled bits immediately (the keystream never
    depends on the data, so there is nothing to buffer); leftover keystream
    bits from the last generated block carry over to the next call, so
    chunk boundaries are invisible.  Descrambling is the same operation.
    """

    def __init__(
        self,
        spec: ScramblerSpec,
        M: int,
        cache: Optional[CompileCache] = None,
    ):
        self._spec = spec
        self._M = check_factor(M, what="block factor M")
        self._cache = cache if cache is not None else default_cache()
        A_M, Y = self._cache.scrambler_block(spec, M)
        self._A = A_M.to_array().astype(np.int64)
        self._Y = Y.to_array().astype(np.int64)
        self._ss = self._cache.scrambler_statespace(spec)
        self._streams: Dict[Hashable, _ScramblerStream] = {}
        self._auto_ids = count()
        self._gauges = _GaugePublisher("scrambler")

    @property
    def spec(self) -> ScramblerSpec:
        """The scrambler standard every stream applies."""
        return self._spec

    @property
    def M(self) -> int:
        """Keystream bits generated per block step."""
        return self._M

    def __len__(self) -> int:
        return len(self._streams)

    @property
    def stream_count(self) -> int:
        """Number of streams currently open."""
        return len(self._streams)

    def _stream(self, stream_id: Hashable) -> _ScramblerStream:
        try:
            return self._streams[stream_id]
        except KeyError:
            raise StreamError(
                f"unknown scrambler stream {stream_id!r}: open() it first "
                f"({len(self._streams)} streams currently open)"
            ) from None

    def _publish(self) -> None:
        self._gauges.publish(len(self._streams), 0)

    def pending_keystream_bits(self, stream_id: Hashable) -> int:
        """Generated-but-unused keystream bits carried to the next chunk."""
        return len(self._stream(stream_id).keystream)

    # ------------------------------------------------------------------
    def open(self, stream_id: Optional[Hashable] = None, seed: Optional[int] = None) -> Hashable:
        """Open a stream with its own seed; returns the stream id."""
        if stream_id is None:
            stream_id = next(self._auto_ids)
        if stream_id in self._streams:
            raise StreamError(f"stream {stream_id!r} is already open")
        if seed is None:
            seed = self._spec.seed
        else:
            seed = check_seed(seed, self._spec.degree, allow_zero=False)
        state = self._ss.state_from_int(seed)
        self._streams[stream_id] = _ScramblerStream(state=state)
        self._publish()
        return stream_id

    def feed(self, stream_id: Hashable, bits: Sequence[int]) -> List[int]:
        """Scramble (or descramble) one chunk; returns the output bits."""
        stream = self._stream(stream_id)
        checked = check_bits(bits).tolist()
        generated = 0
        while len(stream.keystream) < len(checked):
            block = (self._Y @ stream.state.astype(np.int64)) & 1
            stream.keystream.extend(int(b) for b in block)
            stream.state = ((self._A @ stream.state.astype(np.int64)) & 1).astype(np.uint8)
            generated += 1
        _METRICS()["blocks"].labels(kind="scrambler").inc(generated)
        out = [(b ^ k) & 1 for b, k in zip(checked, stream.keystream)]
        del stream.keystream[: len(checked)]
        return out

    def close(self, stream_id: Hashable) -> None:
        """Close a stream and discard its state."""
        self._stream(stream_id)
        del self._streams[stream_id]
        self._publish()
