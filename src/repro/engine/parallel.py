"""Sharded multi-worker execution layer over the batch kernels.

The paper scales CRC throughput *spatially* — M bits per PiCoGA issue —
and PR 1–4 scaled it *temporally* — B messages per numpy call.  This
module adds the third axis: independent data shards on independent
workers.  Two decomposition theorems make sharding a correctness-
preserving multiplier rather than an approximation:

* **Per-stream partitioning.**  Batch CRC / scrambler workloads are
  embarrassingly parallel across streams: any partition of the batch
  computes exactly the serial result, shard by shard, because streams
  never interact.
* **``A^k`` state composition.**  A *single* message also splits: for a
  zero-start register, feeding ``s1 || s2`` gives
  ``raw(s1||s2) = raw(s1) · x^{|s2|} ⊕ raw(s2)  (mod G)`` — advancing a
  register by ``k`` data-free clocks is multiplication by ``A^k``, which
  in the quotient-ring basis is ``x^k mod G`` (a carry-less multiply).
  Shards computed independently from zero recombine exactly; the spec's
  ``init`` preset folds in once at the end, as in the serial tail
  contract.  The derivation is spelled out in ``docs/PARALLEL.md``.

Worker substrate: the numpy ``"packed"`` backend releases the GIL inside
its vectorized kernels, so a :class:`~concurrent.futures.ThreadPoolExecutor`
scales it across cores with zero serialization cost; the pure-Python
``"reference"`` / ``"packed-int"`` backends hold the GIL, so those fall
back to a :class:`~concurrent.futures.ProcessPoolExecutor` whose workers
re-build engines from pickled specs — warming from the persistent
:class:`~repro.engine.diskcache.DiskCompileCache` instead of recompiling.

Worker count resolution order: explicit ``workers=`` argument, else the
``REPRO_WORKERS`` environment variable, else ``1`` (serial).  ``0`` or
``"auto"`` selects :func:`os.cpu_count`.  Any worker failure surfaces as
:class:`~repro.errors.StreamError` — never a hang.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from itertools import count
from time import perf_counter, process_time
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.crc.spec import CRCSpec
from repro.engine.batch import BatchAdditiveScrambler, BatchCRC
from repro.engine.cache import CompileCache, default_cache
from repro.engine.pipeline import CRCPipeline
from repro.errors import ReproError, StreamError, ValidationError
from repro.gf2.backend import GF2Backend, NumpyPackedBackend, resolve_backend
from repro.scrambler.specs import ScramblerSpec
from repro.telemetry import (
    TraceContext,
    WorkerCapture,
    attach_flight_dump,
    bind_families,
    default_flight_recorder,
    default_registry,
    default_tracer,
    merge_worker_payload,
)
from repro.telemetry.context import worker_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner probes us)
    from repro.engine.planner import ExecutionPlan

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: Bucket edges for the per-phase wall/CPU breakdown histograms.
PHASE_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

# Families resolve against the *current* default registry at use sites
# (never snapshotted at import), so swapping/enabling the registry after
# this module is imported is always observed.
_METRICS = bind_families(lambda reg: {
    "workers": reg.gauge(
        "engine_parallel_workers",
        "Configured worker slots across live pools",
        labels=("mode",),
    ),
    "busy": reg.gauge(
        "engine_parallel_busy_workers",
        "Shard tasks currently in flight",
        labels=("mode",),
    ),
    "tasks": reg.counter(
        "engine_parallel_tasks_total",
        "Shard tasks dispatched to worker pools",
        labels=("kind",),
    ),
    "shard_streams": reg.histogram(
        "engine_parallel_shard_streams",
        "Streams per dispatched shard",
        labels=("kind",),
        buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
    ),
    "shard_bits": reg.histogram(
        "engine_parallel_shard_bits",
        "Payload bits per dispatched shard",
        labels=("kind",),
        buckets=(64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 1 << 22),
    ),
    "steals": reg.counter(
        "engine_parallel_steals_total",
        "Streams migrated between pipeline shards by the scheduler",
        labels=("kind",),
    ),
    "phase": reg.histogram(
        "engine_phase_seconds",
        "Wall-clock seconds per execution phase "
        "(compile / dispatch / shard-execute / recombine)",
        labels=("phase",),
        buckets=PHASE_BUCKETS,
    ),
    "phase_cpu": reg.histogram(
        "engine_phase_cpu_seconds",
        "CPU seconds per execution phase (where measured)",
        labels=("phase",),
        buckets=PHASE_BUCKETS,
    ),
})


def observe_phase(phase: str, wall_s: float, cpu_s: Optional[float] = None) -> None:
    """Publish one phase timing into the wall/CPU breakdown histograms.

    The planner's ``record_actual`` consumes the same numbers; keeping
    the publish path here means every front-end (batch engines, pools,
    DREAM) feeds one consistent ``engine_phase_seconds`` family.
    """
    if not default_registry().enabled:
        return
    metrics = _METRICS()
    metrics["phase"].labels(phase=phase).observe(wall_s)
    if cpu_s is not None:
        metrics["phase_cpu"].labels(phase=phase).observe(cpu_s)


def resolve_workers(workers: Union[None, int, str] = None) -> int:
    """Resolve a worker count: argument, else ``$REPRO_WORKERS``, else 1.

    ``0`` or ``"auto"`` (either source) selects :func:`os.cpu_count`.
    The result is always >= 1; anything unparseable or negative raises
    :class:`~repro.errors.ValidationError`.
    """
    source: Union[None, int, str] = workers
    if source is None:
        env = os.environ.get(WORKERS_ENV)
        if env is None or not env.strip():
            return 1
        source = env.strip()
    if isinstance(source, str):
        if source.lower() == "auto":
            source = 0
        else:
            try:
                source = int(source, 10)
            except ValueError:
                raise ValidationError(
                    f"worker count must be an integer or 'auto', got {source!r}"
                ) from None
    if not isinstance(source, int) or isinstance(source, bool):
        raise ValidationError(f"worker count must be an integer, got {source!r}")
    if source == 0:
        return max(1, os.cpu_count() or 1)
    if source < 0:
        raise ValidationError(f"worker count must be >= 0, got {source}")
    return source


def plan_shards(n_items: int, shards: int) -> List[Tuple[int, int]]:
    """Balanced contiguous partition of ``range(n_items)`` into shards.

    Returns ``(start, stop)`` half-open index pairs, at most ``shards``
    of them, never empty, sizes differing by at most one — the static
    round-robin plan the batch front-ends use (the streaming scheduler
    handles dynamic imbalance separately).
    """
    if shards < 1:
        raise ValidationError(f"shard count must be >= 1, got {shards}")
    if n_items <= 0:
        return []
    shards = min(shards, n_items)
    base, extra = divmod(n_items, shards)
    bounds = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


# ----------------------------------------------------------------------
# Process-pool worker side
# ----------------------------------------------------------------------
#: Per-process engine memo for the process-pool fallback: workers are
#: long-lived, so each (spec, M, method, backend) compiles at most once
#: per worker — and at most once per *machine* when a disk cache is set.
_PROC_ENGINES: Dict[Tuple, object] = {}


def _proc_initializer(cache_dir: Optional[str]) -> None:
    """Pool initializer: point the child's default cache at the disk layer."""
    if cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir


def _proc_engine(kind: str, spec, M: int, method: str, backend: Optional[str]):
    """The child-process engine for a shard task, built once per worker."""
    key = (kind, spec, M, method, backend)
    engine = _PROC_ENGINES.get(key)
    if engine is None:
        if kind == "crc":
            engine = BatchCRC(spec, M, method=method, backend=backend)
        else:
            engine = BatchAdditiveScrambler(spec, M, backend=backend)
        _PROC_ENGINES[key] = engine
    return engine


def _proc_crc_shard(
    spec: CRCSpec,
    M: int,
    method: str,
    backend: Optional[str],
    messages: List[bytes],
) -> List[int]:
    """Process-pool task: finalized CRCs for one shard of messages."""
    return _proc_engine("crc", spec, M, method, backend).compute_batch(messages)


def _proc_crc_shard_bits(
    spec: CRCSpec,
    M: int,
    method: str,
    backend: Optional[str],
    bit_streams: List[List[int]],
    fold_init: bool,
) -> List[int]:
    """Process-pool task: raw registers for one shard of bit streams."""
    return _proc_engine("crc", spec, M, method, backend).raw_registers_bits(
        bit_streams, fold_init=fold_init
    )


def _proc_scrambler_shard(
    spec: ScramblerSpec,
    M: int,
    backend: Optional[str],
    bit_streams: List[List[int]],
    seeds: Optional[List[int]],
) -> List[List[int]]:
    """Process-pool task: scramble one shard of bit streams."""
    return _proc_engine("scrambler", spec, M, "", backend).scramble_batch(
        bit_streams, seeds=seeds
    )


def _ctx_shard_call(ctx_dict: dict, shard: int, fn, args: tuple) -> tuple:
    """Process-pool wrapper: run a shard task under a propagated
    :class:`~repro.telemetry.TraceContext` and ship telemetry back.

    The worker enables its local registry/tracer/flight recorder per the
    context, runs ``fn(*args)`` inside a detached ``worker.shard`` span,
    and returns a tagged tuple: ``("ok", payload, result)`` on success,
    ``("err", payload, exc, repr)`` on failure — the payload being the
    picklable delta (metrics / span / events / timings) the parent
    merges.  Exceptions are *returned*, not raised, so the worker's
    flight-recorder tail survives the trip even for unpicklable errors
    (those degrade to their ``repr``).
    """
    ctx = TraceContext.from_dict(ctx_dict)
    cap = WorkerCapture(ctx, worker=worker_id(), shard=shard)
    cap.begin()
    try:
        result = fn(*args)
    except Exception as exc:  # noqa: BLE001 - shipped back, re-typed by the pool
        payload = cap.finish(error=exc)
        try:
            import pickle

            pickle.dumps(exc)
            shippable: Optional[BaseException] = exc
        except Exception:  # pragma: no cover - exotic unpicklable errors
            shippable = None
        return ("err", payload, shippable, f"{type(exc).__name__}: {exc}")
    return ("ok", cap.finish(), result)


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
class _ShardFailure(Exception):
    """Internal envelope for a failed thread shard.

    Carries the worker's name, the captured telemetry payload, and the
    original exception so :meth:`WorkerPool.run` can merge the partial
    capture and attribute the crash before re-typing the error.
    """

    def __init__(self, worker: str, payload: dict, cause: BaseException):
        super().__init__(str(cause))
        self.worker = worker
        self.payload = payload
        self.cause = cause


class WorkerPool:
    """A lazily started executor with shard-level error containment.

    ``mode`` is ``"thread"`` (GIL-releasing numpy kernels) or
    ``"process"`` (pure-Python backends).  The pool publishes its slot
    count and in-flight task gauges, and :meth:`run` converts *any*
    worker-side failure — including a worker process dying mid-task
    (``BrokenProcessPool``) — into :class:`~repro.errors.StreamError`,
    so callers block on results, never on a wedged queue.

    Lifecycle contract (the ``repro.serve`` drain path leans on this):
    :meth:`close` is idempotent and thread-safe — double-close, close
    from two threads, and close while shards are in flight all raise
    nothing and never hang (in-flight shards complete; a dispatch that
    loses the race surfaces as a contained
    :class:`~repro.errors.StreamError`, never a wedged queue).
    """

    def __init__(
        self,
        workers: int,
        mode: str = "thread",
        cache_dir: Optional[str] = None,
    ):
        if mode not in ("thread", "process"):
            raise ValidationError(f"pool mode must be thread|process, got {mode!r}")
        if workers < 1:
            raise ValidationError(f"pool needs >= 1 worker, got {workers}")
        self._workers = workers
        self._mode = mode
        self._cache_dir = cache_dir
        self._executor: Optional[Executor] = None
        # Guards executor creation/teardown so close() racing _ensure()
        # (or another close()) can neither leak an executor nor double-
        # decrement the worker-slot gauge.
        self._lifecycle_lock = threading.Lock()

    @property
    def workers(self) -> int:
        """Configured worker slots."""
        return self._workers

    @property
    def mode(self) -> str:
        """``"thread"`` or ``"process"``."""
        return self._mode

    @property
    def started(self) -> bool:
        """Whether the underlying executor exists yet."""
        return self._executor is not None

    def _ensure(self) -> Executor:
        with self._lifecycle_lock:
            if self._executor is None:
                if self._mode == "thread":
                    self._executor = ThreadPoolExecutor(
                        max_workers=self._workers,
                        thread_name_prefix="repro-shard",
                    )
                else:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self._workers,
                        initializer=_proc_initializer,
                        initargs=(self._cache_dir,),
                    )
                if default_registry().enabled:
                    _METRICS()["workers"].labels(mode=self._mode).inc(self._workers)
            return self._executor

    def _thread_wrapper(self, ctx: TraceContext, shard: int, fn):
        """The thread-mode shard harness: spans + crash events in place.

        Thread shards share the parent's registry and flight recorder,
        so only the span is *captured* (metrics/events publish directly);
        a failure is recorded before the exception propagates so the
        parent can name the worker in the :class:`StreamError` dump.
        """

        def call(*args):
            worker = threading.current_thread().name
            cap = WorkerCapture(ctx, worker=worker, shard=shard)
            cap.begin()
            try:
                result = fn(*args)
            except Exception as exc:
                payload = cap.finish(error=exc)
                recorder = default_flight_recorder()
                if recorder.enabled:
                    recorder.record(
                        "worker-crash",
                        f"{type(exc).__name__}: {exc}",
                        worker=worker,
                        shard=shard,
                    )
                raise _ShardFailure(worker, payload, exc) from exc
            return ("ok", cap.finish(), result)

        return call

    def run(self, fn, shard_args: Sequence[tuple]) -> List:
        """Run ``fn(*args)`` for every shard; results in shard order.

        All shards are submitted before any result is awaited, so thread
        shards overlap inside the GIL-releasing kernels and process
        shards overlap fully.  While any telemetry default (registry,
        tracer, flight recorder) is enabled, each dispatch opens a
        ``pool.dispatch`` span and every shard travels with a
        :class:`~repro.telemetry.TraceContext`: workers capture spans
        (and, in process mode, metric deltas and events) that merge back
        into the parent under ``worker=<id>`` labels as results arrive.

        The first failing shard aborts the call with
        :class:`~repro.errors.StreamError` (library-typed errors pass
        through), after every future has been collected or cancelled —
        no orphaned work, no hang.  The raised error carries a
        flight-recorder dump in ``error.context["flight_recorder"]``
        naming the failed worker and its last events.
        """
        executor = self._ensure()
        registry, tracer = default_registry(), default_tracer()
        recorder = default_flight_recorder()
        telemetry = registry.enabled
        metrics = _METRICS() if telemetry else None
        wrap = telemetry or tracer.enabled or recorder.enabled
        with tracer.span(
            "pool.dispatch", mode=self._mode, shards=len(shard_args)
        ) as dispatch:
            t0 = perf_counter()
            if recorder.enabled:
                recorder.record(
                    "dispatch", f"{len(shard_args)} shard(s)", mode=self._mode
                )
            remote = self._mode == "process"
            ctx = (
                TraceContext.capture(parent_span=dispatch, remote=remote)
                if wrap
                else None
            )
            futures = []
            results = []
            error: Optional[BaseException] = None
            failed_worker = ""
            failure_events: Optional[List[dict]] = None
            for shard, args in enumerate(shard_args):
                try:
                    if ctx is not None and remote:
                        future = executor.submit(
                            _ctx_shard_call, ctx.to_dict(), shard, fn, tuple(args)
                        )
                    elif ctx is not None:
                        future = executor.submit(
                            self._thread_wrapper(ctx, shard, fn), *args
                        )
                    else:
                        future = executor.submit(fn, *args)
                except RuntimeError as exc:
                    # A concurrent close() shut this executor down between
                    # _ensure() and submit.  Shards already submitted run
                    # to completion (shutdown waits for them); the rest of
                    # the dispatch is abandoned and the call surfaces as a
                    # contained StreamError below — never a hang.
                    error = StreamError(
                        f"worker pool closed during dispatch ({exc})"
                    )
                    break
                # Busy accounting only after the submit succeeded, so a
                # lost close/dispatch race can't strand the gauge high.
                if telemetry:
                    metrics["busy"].labels(mode=self._mode).inc()
                    future.add_done_callback(
                        lambda _f: _METRICS()["busy"].labels(mode=self._mode).dec()
                    )
                futures.append(future)
            for future in futures:
                if error is not None:
                    future.cancel()
                    continue
                try:
                    value = future.result()
                except _ShardFailure as failure:
                    error = failure.cause
                    failed_worker = failure.worker
                    failure_events = (failure.payload or {}).get("events")
                    merge_worker_payload(failure.payload, parent_span=dispatch)
                except BaseException as exc:  # noqa: BLE001 - re-typed below
                    error = exc
                    continue
                else:
                    if ctx is None:
                        results.append(value)
                        continue
                    tag, payload, *rest = value
                    self._absorb(payload, dispatch)
                    if tag == "ok":
                        results.append(rest[0])
                    else:
                        shipped, text = rest
                        error = shipped if shipped is not None else StreamError(
                            f"worker shard failed remotely ({text})"
                        )
                        failed_worker = str(payload.get("worker", ""))
                        failure_events = payload.get("events")
                        if recorder.enabled and not failure_events:
                            recorder.record(
                                "worker-crash", text, worker=failed_worker,
                            )
            if telemetry:
                observe_phase("dispatch", perf_counter() - t0)
        if error is not None:
            if isinstance(error, ReproError):
                raised = error
            else:
                who = f" (worker {failed_worker})" if failed_worker else ""
                raised = StreamError(
                    f"worker shard failed in {self._mode} pool{who} "
                    f"({type(error).__name__}: {error})"
                )
                raised.__cause__ = error
            if recorder.enabled:
                attach_flight_dump(
                    raised, worker=failed_worker, events=failure_events or None
                )
            raise raised
        return results

    def _absorb(self, payload: dict, dispatch) -> None:
        """Merge one shard payload into the live defaults + phase series."""
        merge_worker_payload(payload, parent_span=dispatch)
        if default_registry().enabled:
            observe_phase(
                "shard-execute",
                float(payload.get("wall_s", 0.0)),
                float(payload.get("cpu_s", 0.0)),
            )

    def close(self) -> None:
        """Shut the executor down; pending work completes.

        Idempotent and thread-safe: the executor handle is atomically
        detached under the lifecycle lock (so exactly one closer
        decrements the slot gauge and shuts it down), and the blocking
        ``shutdown(wait=True)`` happens outside the lock so a concurrent
        second close — or a concurrent :meth:`run` — can never deadlock
        against it.  A later :meth:`run` lazily restarts the pool.
        """
        with self._lifecycle_lock:
            executor, self._executor = self._executor, None
            if executor is None:
                return
            if default_registry().enabled:
                _METRICS()["workers"].labels(mode=self._mode).dec(self._workers)
        executor.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "started" if self.started else "idle"
        return f"WorkerPool(workers={self._workers}, mode={self._mode!r}, {state})"


def _pick_mode(backend: GF2Backend) -> str:
    """Thread pool for GIL-releasing numpy kernels, processes otherwise."""
    return "thread" if isinstance(backend, NumpyPackedBackend) else "process"


def _apply_plan(plan, workers, backend, mode):
    """Fill engine knobs from an :class:`~repro.engine.planner.
    ExecutionPlan`, without overriding anything the caller set explicitly.

    Returns the effective ``(workers, backend, mode)``.  A serial plan
    leaves ``mode`` alone (no pool is built for ``workers == 1``, so the
    substrate choice is moot and ``_pick_mode`` keeps its say)."""
    if plan is None:
        return workers, backend, mode
    if workers is None:
        workers = plan.workers
    if backend is None:
        backend = plan.backend
    if mode is None and plan.mode in ("thread", "process"):
        mode = plan.mode
    return workers, backend, mode


def _observe_shards(kind: str, sizes: Sequence[int], bits: Sequence[int]) -> None:
    """Publish per-dispatch shard shape telemetry."""
    if not default_registry().enabled:
        return
    metrics = _METRICS()
    metrics["tasks"].labels(kind=kind).inc(len(sizes))
    for size, nbits in zip(sizes, bits):
        metrics["shard_streams"].labels(kind=kind).observe(size)
        metrics["shard_bits"].labels(kind=kind).observe(nbits)


# ----------------------------------------------------------------------
# Batch front-ends
# ----------------------------------------------------------------------
class ParallelBatchCRC:
    """:class:`~repro.engine.batch.BatchCRC` sharded over a worker pool.

    Batch calls partition across the stream dimension (exact by stream
    independence); :meth:`compute` time-shards a single long message and
    recombines the shard registers with the ``x^k mod G`` composition
    (exact by linearity).  ``workers=1`` *is* the serial engine: no pool
    is created and every call delegates object-for-object.
    """

    def __init__(
        self,
        spec: CRCSpec,
        M: int,
        method: str = "lookahead",
        workers: Union[None, int, str] = None,
        cache: Optional[CompileCache] = None,
        backend: Union[None, str, GF2Backend] = None,
        mode: Optional[str] = None,
        min_shard_bits: int = 4096,
        plan: Optional["ExecutionPlan"] = None,
    ):
        workers, backend, mode = _apply_plan(plan, workers, backend, mode)
        self._plan = plan
        self._cache = cache if cache is not None else default_cache()
        t0, c0 = perf_counter(), process_time()
        self._serial = BatchCRC(
            spec, M, method=method, cache=self._cache, backend=backend
        )
        observe_phase("compile", perf_counter() - t0, process_time() - c0)
        self._workers = resolve_workers(workers)
        self._backend_name = None if backend is None else self._serial.backend.name
        self._mode = mode or _pick_mode(self._serial.backend)
        self._min_shard_bits = max(1, min_shard_bits)
        disk = self._cache.disk
        self._pool = (
            WorkerPool(
                self._workers,
                mode=self._mode,
                cache_dir=str(disk.root) if disk is not None else None,
            )
            if self._workers > 1
            else None
        )

    # ------------------------------------------------------------------
    @property
    def spec(self) -> CRCSpec:
        """The CRC standard this engine computes."""
        return self._serial.spec

    @property
    def M(self) -> int:
        """Look-ahead block factor of the underlying kernels."""
        return self._serial.M

    @property
    def method(self) -> str:
        """Block recurrence in use: ``"lookahead"`` or ``"derby"``."""
        return self._serial.method

    @property
    def workers(self) -> int:
        """Resolved worker count (1 = serial delegation)."""
        return self._workers

    @property
    def mode(self) -> str:
        """Worker substrate: ``"thread"`` or ``"process"``."""
        return self._mode

    @property
    def serial_engine(self) -> BatchCRC:
        """The underlying serial batch engine (shared by thread shards)."""
        return self._serial

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The worker pool, or ``None`` when ``workers == 1``."""
        return self._pool

    @property
    def cache(self) -> CompileCache:
        """The compile cache the block matrices come from."""
        return self._cache

    @property
    def plan(self) -> Optional["ExecutionPlan"]:
        """The planner decision this engine was built from, if any."""
        return self._plan

    def close(self) -> None:
        """Release pool workers (safe to call at any time, repeatedly)."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ParallelBatchCRC":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _shard_batch(self, items: Sequence, bits_of) -> Optional[List[Tuple[int, int]]]:
        """The shard plan for a batch call, or ``None`` to run serially."""
        if self._pool is None or len(items) < 2:
            return None
        total_bits = sum(bits_of(item) for item in items)
        if total_bits < self._min_shard_bits:
            return None
        return plan_shards(len(items), self._workers)

    def compute_batch(self, messages: Sequence[bytes]) -> List[int]:
        """Finalized CRCs of B byte messages, sharded across workers."""
        messages = list(messages)
        bounds = self._shard_batch(messages, lambda m: 8 * len(m))
        if bounds is None:
            return self._serial.compute_batch(messages)
        shards = [messages[a:b] for a, b in bounds]
        _observe_shards(
            "crc-batch",
            [len(s) for s in shards],
            [sum(8 * len(m) for m in s) for s in shards],
        )
        if self._mode == "thread":
            results = self._pool.run(
                self._serial.compute_batch, [(s,) for s in shards]
            )
        else:
            results = self._pool.run(
                _proc_crc_shard,
                [
                    (self.spec, self.M, self.method, self._backend_name, s)
                    for s in shards
                ],
            )
        return [crc for shard in results for crc in shard]

    def raw_registers_bits(
        self,
        bit_streams: Sequence[Sequence[int]],
        fold_init: bool = True,
    ) -> List[int]:
        """Raw registers for bit streams, sharded across workers."""
        streams = [list(s) for s in bit_streams]
        bounds = self._shard_batch(streams, len)
        if bounds is None:
            return self._serial.raw_registers_bits(streams, fold_init=fold_init)
        shards = [streams[a:b] for a, b in bounds]
        _observe_shards(
            "crc-bits",
            [len(s) for s in shards],
            [sum(len(bits) for bits in s) for s in shards],
        )
        if self._mode == "thread":
            results = self._pool.run(
                self._serial.raw_registers_bits,
                [(s, fold_init) for s in shards],
            )
        else:
            results = self._pool.run(
                _proc_crc_shard_bits,
                [
                    (self.spec, self.M, self.method, self._backend_name, s, fold_init)
                    for s in shards
                ],
            )
        return [reg for shard in results for reg in shard]

    def compute_bits_batch(self, bit_streams: Sequence[Sequence[int]]) -> List[int]:
        """Finalized CRCs of raw bit streams, sharded across workers."""
        return [
            self.spec.finalize(r) for r in self.raw_registers_bits(bit_streams)
        ]

    # ------------------------------------------------------------------
    def _combine_shards(self, raws: Sequence[int], lengths: Sequence[int]) -> int:
        """Fold zero-start shard registers left-to-right via ``x^k mod G``."""
        from repro.gf2.clmul import clmulmod

        t0, c0 = perf_counter(), process_time()
        g = self.spec.generator().coeffs
        acc = 0
        for raw, nbits in zip(raws, lengths):
            acc = clmulmod(acc, self._xpow(nbits), g) ^ raw
        observe_phase("recombine", perf_counter() - t0, process_time() - c0)
        return acc

    def _xpow(self, n_bits: int) -> int:
        """``x^n mod G`` — the register-advance multiplier, cached."""
        from repro.gf2.clmul import clpowmod

        g = self.spec.generator().coeffs
        return self._cache.get(
            ("xpow", self.spec, n_bits), lambda: clpowmod(2, n_bits, g)
        )

    def compute_sharded_bits(self, bits: Sequence[int]) -> int:
        """One message's CRC via time-axis sharding + ``A^k`` recombination.

        The bit stream (transmission order) splits into ``workers``
        contiguous shards; each worker computes its shard's zero-start
        register independently and the shard registers are composed with
        carry-less multiplies.  Bit-exact for every length, including
        lengths not divisible by the shard count (the plan just makes
        the leading shards one bit longer).
        """
        bits = list(bits)
        if (
            self._pool is None
            or len(bits) < max(2 * self.M, self._min_shard_bits)
        ):
            return self.spec.finalize(
                self._serial.raw_registers_bits([bits])[0]
            )
        bounds = plan_shards(len(bits), self._workers)
        shards = [bits[a:b] for a, b in bounds]
        _observe_shards("crc-timeshard", [1] * len(shards), [len(s) for s in shards])
        if self._mode == "thread":
            results = self._pool.run(
                self._serial.raw_registers_bits,
                [([s], False) for s in shards],
            )
        else:
            results = self._pool.run(
                _proc_crc_shard_bits,
                [
                    (self.spec, self.M, self.method, self._backend_name, [s], False)
                    for s in shards
                ],
            )
        raw0 = self._combine_shards(
            [r[0] for r in results], [len(s) for s in shards]
        )
        raw = raw0 ^ self._cache.init_fold(self.spec, len(bits))
        return self.spec.finalize(raw)

    def compute(self, data: bytes) -> int:
        """Single-message CRC; long messages are time-sharded across workers."""
        return self.compute_sharded_bits(self.spec.message_bits(data))


class ParallelBatchAdditiveScrambler:
    """:class:`~repro.engine.batch.BatchAdditiveScrambler` sharded by stream.

    Scrambler streams are autonomous (the keystream never reads data), so
    per-stream partitioning is trivially exact; each shard carries its own
    seed slice.  Scrambling stays an involution shard-by-shard, so
    :meth:`descramble_batch` is the same dispatch.
    """

    def __init__(
        self,
        spec: ScramblerSpec,
        M: int,
        workers: Union[None, int, str] = None,
        cache: Optional[CompileCache] = None,
        backend: Union[None, str, GF2Backend] = None,
        mode: Optional[str] = None,
        min_shard_bits: int = 4096,
        plan: Optional["ExecutionPlan"] = None,
    ):
        workers, backend, mode = _apply_plan(plan, workers, backend, mode)
        self._plan = plan
        self._cache = cache if cache is not None else default_cache()
        t0, c0 = perf_counter(), process_time()
        self._serial = BatchAdditiveScrambler(
            spec, M, cache=self._cache, backend=backend
        )
        observe_phase("compile", perf_counter() - t0, process_time() - c0)
        self._workers = resolve_workers(workers)
        self._backend_name = None if backend is None else self._serial.backend.name
        self._mode = mode or _pick_mode(self._serial.backend)
        self._min_shard_bits = max(1, min_shard_bits)
        disk = self._cache.disk
        self._pool = (
            WorkerPool(
                self._workers,
                mode=self._mode,
                cache_dir=str(disk.root) if disk is not None else None,
            )
            if self._workers > 1
            else None
        )

    @property
    def spec(self) -> ScramblerSpec:
        """The scrambler standard (polynomial + default seed)."""
        return self._serial.spec

    @property
    def M(self) -> int:
        """Keystream bits produced per block step."""
        return self._serial.M

    @property
    def workers(self) -> int:
        """Resolved worker count (1 = serial delegation)."""
        return self._workers

    @property
    def serial_engine(self) -> BatchAdditiveScrambler:
        """The underlying serial batch engine (shared by thread shards)."""
        return self._serial

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The worker pool, or ``None`` when ``workers == 1``."""
        return self._pool

    @property
    def plan(self) -> Optional["ExecutionPlan"]:
        """The planner decision this engine was built from, if any."""
        return self._plan

    def close(self) -> None:
        """Release pool workers (safe to call at any time, repeatedly)."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ParallelBatchAdditiveScrambler":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def scramble_batch(
        self,
        bit_streams: Sequence[Sequence[int]],
        seeds: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        """XOR each stream with its keystream, shards in parallel."""
        streams = [list(s) for s in bit_streams]
        if seeds is not None:
            seeds = list(seeds)
        if (
            self._pool is None
            or len(streams) < 2
            or sum(len(s) for s in streams) < self._min_shard_bits
        ):
            return self._serial.scramble_batch(streams, seeds=seeds)
        bounds = plan_shards(len(streams), self._workers)
        shards = [streams[a:b] for a, b in bounds]
        shard_seeds = [
            seeds[a:b] if seeds is not None else None for a, b in bounds
        ]
        _observe_shards(
            "scrambler-batch",
            [len(s) for s in shards],
            [sum(len(bits) for bits in s) for s in shards],
        )
        if self._mode == "thread":
            results = self._pool.run(
                self._serial.scramble_batch,
                list(zip(shards, shard_seeds)),
            )
        else:
            results = self._pool.run(
                _proc_scrambler_shard,
                [
                    (self.spec, self.M, self._backend_name, s, ss)
                    for s, ss in zip(shards, shard_seeds)
                ],
            )
        return [bits for shard in results for bits in shard]

    def descramble_batch(
        self,
        bit_streams: Sequence[Sequence[int]],
        seeds: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        """Identical to :meth:`scramble_batch` (XOR is an involution)."""
        return self.scramble_batch(bit_streams, seeds=seeds)


# ----------------------------------------------------------------------
# Streaming: work-aware shard scheduler + sharded pipeline
# ----------------------------------------------------------------------
class ShardScheduler:
    """Least-pending assignment with threshold-gated stealing.

    New streams land on the shard with the fewest pending bits (ties
    break round-robin, so an idle start spreads arrivals evenly).  When
    the heaviest shard's backlog exceeds ``steal_ratio`` times the
    lightest's **and** the gap is worth at least one block, the
    scheduler plans migrations that move whole streams from the heavy
    shard to the light one until the gap closes — cheap to decide (one
    pass over pending gauges), and exact because CRC streams are
    independent and carry their state with them.
    """

    def __init__(self, shards: int, steal_ratio: float = 2.0):
        if shards < 1:
            raise ValidationError(f"scheduler needs >= 1 shard, got {shards}")
        if steal_ratio < 1.0:
            raise ValidationError(
                f"steal ratio must be >= 1.0, got {steal_ratio}"
            )
        self._shards = shards
        self._ratio = steal_ratio
        self._rr = count()

    @property
    def shards(self) -> int:
        """Number of shards being scheduled."""
        return self._shards

    def assign(self, pending_bits: Sequence[int]) -> int:
        """Pick the shard for a newly opened stream."""
        if len(pending_bits) != self._shards:
            raise ValidationError(
                f"expected {self._shards} pending gauges, got {len(pending_bits)}"
            )
        low = min(pending_bits)
        candidates = [i for i, p in enumerate(pending_bits) if p == low]
        return candidates[next(self._rr) % len(candidates)]

    def plan_steals(
        self,
        pending_bits: Sequence[int],
        stream_bits: Sequence[Dict[Hashable, int]],
        min_gap: int,
    ) -> List[Tuple[Hashable, int, int]]:
        """Plan ``(stream_id, src, dst)`` migrations to close a lag gap.

        ``stream_bits`` maps stream id -> buffered bits per shard.  The
        plan greedily moves the largest streams off the heaviest shard
        while the imbalance stays above both the ratio and ``min_gap``;
        it never empties the source below the destination.
        """
        pending = list(pending_bits)
        moves: List[Tuple[Hashable, int, int]] = []
        for _ in range(sum(len(m) for m in stream_bits)):
            src = max(range(len(pending)), key=pending.__getitem__)
            dst = min(range(len(pending)), key=pending.__getitem__)
            gap = pending[src] - pending[dst]
            if gap < min_gap or pending[src] < self._ratio * max(pending[dst], 1):
                break
            movable = {
                sid: bits
                for sid, bits in stream_bits[src].items()
                if 0 < bits
                and (bits <= gap // 2 or (bits <= gap and len(stream_bits[src]) > 1))
            }
            if not movable:
                break
            sid = max(movable, key=movable.__getitem__)
            bits = stream_bits[src].pop(sid)
            stream_bits[dst][sid] = bits
            pending[src] -= bits
            pending[dst] += bits
            moves.append((sid, src, dst))
        return moves


class ShardedCRCPipeline:
    """Many concurrent CRC streams over N pipeline shards and a thread pool.

    Each shard is a full :class:`~repro.engine.pipeline.CRCPipeline`
    sharing one compile cache, so shards compile once collectively.
    ``pump`` dispatches every backlogged shard to the pool concurrently
    (the packed kernels release the GIL); before dispatch the
    :class:`ShardScheduler` migrates streams off lagging shards.  The
    public surface mirrors ``CRCPipeline`` — ``open`` / ``feed`` /
    ``feed_bits`` / ``pump`` / ``finalize`` / ``abort`` — and is
    bit-exact against it under any delivery schedule, including
    mid-stream aborts (the ``parallel:workers1-vs-workersN`` fuzz oracle
    drives exactly that).

    Every public mutator is serialized on one re-entrant lock, so
    concurrent callers (the ``repro.serve`` event loop feeding while a
    pump or rebalance runs on an executor thread) can never observe a
    stream mid-migration or a half-advanced shard.  :meth:`close` is
    idempotent and thread-safe; after close, open streams stay intact
    and every call still computes bit-exact results — pumps simply run
    serially instead of re-spawning the worker pool.
    """

    def __init__(
        self,
        spec: CRCSpec,
        M: int,
        method: str = "lookahead",
        workers: Union[None, int, str] = None,
        cache: Optional[CompileCache] = None,
        scheduler: Optional[ShardScheduler] = None,
        plan: Optional["ExecutionPlan"] = None,
    ):
        if plan is not None and workers is None:
            workers = plan.workers
        self._plan = plan
        self._cache = cache if cache is not None else default_cache()
        self._workers = resolve_workers(workers)
        self._shards = [
            CRCPipeline(spec, M, method=method, cache=self._cache)
            for _ in range(self._workers)
        ]
        self._scheduler = scheduler or ShardScheduler(self._workers)
        if self._scheduler.shards != self._workers:
            raise ValidationError(
                f"scheduler plans {self._scheduler.shards} shards but the "
                f"pipeline has {self._workers}"
            )
        self._home: Dict[Hashable, int] = {}
        self._auto_ids = count()
        self._pool = (
            WorkerPool(self._workers, mode="thread") if self._workers > 1 else None
        )
        self._spec = spec
        self._M = M
        # Serializes open/feed/pump/rebalance/finalize/abort/close so the
        # pipeline is safe to drive from multiple threads (the serve
        # layer pumps on an executor thread while connections feed).
        self._lock = threading.RLock()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def spec(self) -> CRCSpec:
        """The CRC standard every stream computes."""
        return self._spec

    @property
    def M(self) -> int:
        """Block factor: bits consumed per stream per pump step."""
        return self._M

    @property
    def workers(self) -> int:
        """Number of pipeline shards (= pool width)."""
        return self._workers

    @property
    def shards(self) -> List[CRCPipeline]:
        """The underlying pipeline shards (read-only view)."""
        return list(self._shards)

    @property
    def stream_count(self) -> int:
        """Streams currently open across all shards."""
        return len(self._home)

    @property
    def plan(self) -> Optional["ExecutionPlan"]:
        """The planner decision this pipeline was built from, if any."""
        return self._plan

    def __len__(self) -> int:
        return len(self._home)

    def pending_bits(self, stream_id: Optional[Hashable] = None) -> int:
        """Buffered input bits awaiting processing (one stream or all)."""
        with self._lock:
            if stream_id is not None:
                return self._shard_of(stream_id).pending_bits(stream_id)
            return sum(s.pending_bits() for s in self._shards)

    def shard_pending(self) -> List[int]:
        """Per-shard pending-bits gauges (the scheduler's lag signal)."""
        with self._lock:
            return [s.pending_bits() for s in self._shards]

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (streams stay usable serially)."""
        return self._closed

    def close(self) -> None:
        """Release pool workers (open streams stay intact).

        Idempotent and thread-safe; callable at any time, including with
        a pump in flight on another thread (the pool waits for in-flight
        shards, never hangs).  Afterwards, feeds/finalizes still work and
        stay bit-exact — pump rounds just run serially, and the worker
        pool is *not* lazily re-spawned.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ShardedCRCPipeline":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _shard_of(self, stream_id: Hashable) -> CRCPipeline:
        try:
            return self._shards[self._home[stream_id]]
        except KeyError:
            raise StreamError(
                f"unknown CRC stream {stream_id!r}: open() it first "
                f"({len(self._home)} streams currently open)"
            ) from None

    # ------------------------------------------------------------------
    def open(
        self,
        stream_id: Optional[Hashable] = None,
        register: Optional[int] = None,
    ) -> Hashable:
        """Open a stream on the least-loaded shard; returns its id."""
        with self._lock:
            if stream_id is None:
                stream_id = f"shard-auto-{next(self._auto_ids)}"
            if stream_id in self._home:
                raise StreamError(f"stream {stream_id!r} is already open")
            shard = self._scheduler.assign(self.shard_pending())
            self._shards[shard].open(stream_id=stream_id, register=register)
            self._home[stream_id] = shard
            return stream_id

    def feed(self, stream_id: Hashable, data: bytes, pump: bool = True) -> None:
        """Append message bytes to a stream (chunked calls compose)."""
        with self._lock:
            self._shard_of(stream_id).feed(stream_id, data, pump=False)
            if pump:
                self.pump()

    def feed_bits(
        self, stream_id: Hashable, bits: Sequence[int], pump: bool = True
    ) -> None:
        """Append raw message bits to a stream (chunked calls compose)."""
        with self._lock:
            self._shard_of(stream_id).feed_bits(stream_id, bits, pump=False)
            if pump:
                self.pump()

    def rebalance(self) -> int:
        """Steal streams from lagging shards; returns migrations made."""
        with self._lock:
            return self._rebalance_locked()

    def _rebalance_locked(self) -> int:
        if self._workers < 2:
            return 0
        stream_bits: List[Dict[Hashable, int]] = []
        for idx, shard in enumerate(self._shards):
            stream_bits.append(
                {
                    sid: shard.pending_bits(sid)
                    for sid, home in self._home.items()
                    if home == idx
                }
            )
        moves = self._scheduler.plan_steals(
            self.shard_pending(), stream_bits, min_gap=self._M
        )
        for sid, src, dst in moves:
            self._shards[src].migrate(sid, self._shards[dst])
            self._home[sid] = dst
        if moves:
            if default_registry().enabled:
                _METRICS()["steals"].labels(kind="crc").inc(len(moves))
            recorder = default_flight_recorder()
            if recorder.enabled:
                recorder.record(
                    "steal",
                    f"{len(moves)} stream(s) migrated",
                    pipeline="crc",
                    moves=[(str(sid), src, dst) for sid, src, dst in moves],
                )
        return len(moves)

    def pump(self) -> int:
        """Rebalance, then advance every backlogged shard concurrently.

        Returns the total number of M-bit blocks processed across shards.
        After :meth:`close`, pump rounds run serially (same results, no
        pool re-spawn).
        """
        with self._lock:
            self._rebalance_locked()
            busy = [s for s in self._shards if s.pending_bits() >= self._M]
            if not busy:
                return 0
            if self._pool is None or self._closed or len(busy) == 1:
                return sum(s.pump() for s in busy)
            _observe_shards(
                "crc-pipeline",
                [s.stream_count for s in busy],
                [s.pending_bits() for s in busy],
            )
            return sum(self._pool.run(CRCPipeline.pump, [(s,) for s in busy]))

    def finalize(self, stream_id: Hashable) -> int:
        """Drain the stream's shard and return the stream's CRC."""
        with self._lock:
            shard = self._shard_of(stream_id)
            crc = shard.finalize(stream_id)
            del self._home[stream_id]
            return crc

    def finalize_many(self, stream_ids: Sequence[Hashable]) -> List[int]:
        """Finalize several streams with one pump round per shard.

        Groups the ids by home shard under the lock and forwards each
        group to that shard's :meth:`CRCPipeline.finalize_many`, so a
        round of B digests pays one packed pump per *shard* instead of
        one per stream.  Validation is all-or-nothing (an unknown or
        duplicated id raises before any stream is consumed) and results
        align with ``stream_ids`` order.
        """
        ids = list(stream_ids)
        if len(set(ids)) != len(ids):
            raise ValidationError(
                f"finalize_many got duplicate stream ids in {ids!r}"
            )
        with self._lock:
            by_shard: Dict[int, List[Hashable]] = {}
            for sid in ids:
                self._shard_of(sid)
                by_shard.setdefault(self._home[sid], []).append(sid)
            crcs: Dict[Hashable, int] = {}
            for shard_idx, group in by_shard.items():
                for sid, crc in zip(
                    group, self._shards[shard_idx].finalize_many(group)
                ):
                    crcs[sid] = crc
                    del self._home[sid]
            return [crcs[sid] for sid in ids]

    def abort(self, stream_id: Hashable) -> None:
        """Drop a stream without computing its CRC."""
        with self._lock:
            shard = self._shard_of(stream_id)
            shard.abort(stream_id)
            del self._home[stream_id]
