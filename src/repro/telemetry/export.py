"""Exporters: JSON-lines snapshots, Prometheus text, structured bench reports.

Three consumers, one registry:

* :func:`write_json_lines` / :func:`read_json_lines` — a lossless
  snapshot format (one family per line) so a CLI run can persist its
  metrics and a later ``repro stats`` invocation, in a fresh process,
  can render them.  Round-trip is exact: restoring a snapshot yields an
  identical :meth:`~repro.telemetry.registry.MetricsRegistry.snapshot`.
* :func:`render_prometheus` — the text exposition format, for scraping
  or eyeballing (``# HELP`` / ``# TYPE`` per family, cumulative
  ``_bucket``/``_sum``/``_count`` series per histogram).
* :class:`BenchReport` — a machine-readable companion to the plain-text
  artifacts under ``benchmarks/results/``: named scalar metrics, named
  series, parameters and environment, written as ``<name>.json`` so the
  perf trajectory is diffable run over run.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import Span, Tracer

TELEMETRY_SCHEMA = "repro-telemetry/2"
#: Schemas :func:`parse_json_lines` accepts (v1 predates span records).
TELEMETRY_SCHEMAS = ("repro-telemetry/1", "repro-telemetry/2")
BENCH_SCHEMA = "repro-bench/1"
TELEMETRY_PATH_ENV = "REPRO_TELEMETRY_PATH"


def default_snapshot_path() -> Path:
    """Where CLI runs drop their metrics snapshot (``$REPRO_TELEMETRY_PATH``
    or ``.repro-telemetry.jsonl`` in the working directory)."""
    return Path(os.environ.get(TELEMETRY_PATH_ENV, ".repro-telemetry.jsonl"))


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def to_json_lines(registry: MetricsRegistry, tracer: Optional[Tracer] = None) -> str:
    """One header line, one line per metric family, and — when a tracer
    is given — one ``{"span": ...}`` line per finished root span.

    The header is the snapshot's single wall-clock anchor
    (``generated_unix``); ``generated_monotonic`` rides along so
    snapshots written by one process order correctly even across a
    wall-clock step (NTP) between writes.
    """
    lines = [json.dumps({
        "schema": TELEMETRY_SCHEMA,
        "generated_unix": time.time(),
        "generated_monotonic": time.monotonic(),
    })]
    for name, family in registry.snapshot().items():
        lines.append(json.dumps({"name": name, **family}, sort_keys=True))
    if tracer is not None:
        for root in tracer.roots():
            lines.append(json.dumps({"span": root.to_dict()}, sort_keys=True))
    return "\n".join(lines) + "\n"


def write_json_lines(
    registry: MetricsRegistry,
    path: Union[str, Path],
    tracer: Optional[Tracer] = None,
) -> Path:
    """Write :func:`to_json_lines` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(to_json_lines(registry, tracer=tracer))
    return path


def _iter_records(text: str):
    """Parsed JSON records from snapshot text, header-validated."""
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "schema" in record and "name" not in record:
            if record["schema"] not in TELEMETRY_SCHEMAS:
                raise ValueError(f"unsupported telemetry schema {record['schema']!r}")
            continue
        yield record


def parse_json_lines(text: str) -> MetricsRegistry:
    """Rebuild a registry from :func:`to_json_lines` output (span records
    are skipped; use :func:`parse_spans` for those)."""
    registry = MetricsRegistry()
    snapshot: Dict[str, dict] = {}
    for record in _iter_records(text):
        if "span" in record and "name" not in record:
            continue
        snapshot[record["name"]] = record
    registry.restore(snapshot)
    return registry


def parse_spans(text: str) -> List[Span]:
    """The root spans embedded in :func:`to_json_lines` output (may be
    empty — v1 snapshots and metric-only runs carry none)."""
    return [
        Span.from_dict(record["span"])
        for record in _iter_records(text)
        if "span" in record and "name" not in record
    ]


def read_json_lines(path: Union[str, Path]) -> MetricsRegistry:
    """Rebuild a registry from a snapshot file."""
    return parse_json_lines(Path(path).read_text())


def read_spans(path: Union[str, Path]) -> List[Span]:
    """The root spans embedded in a snapshot file."""
    return parse_spans(Path(path).read_text())


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in merged.items())
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for name, family in registry.snapshot().items():
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape(family['help'])}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if family["kind"] == "histogram":
                running = 0
                for edge, count in zip(sample["edges"], sample["bucket_counts"]):
                    running += count
                    le = _fmt_labels(labels, {"le": _fmt_value(edge)})
                    lines.append(f"{name}_bucket{le} {running}")
                total = running + sample["bucket_counts"][-1]
                lines.append(f'{name}_bucket{_fmt_labels(labels, {"le": "+Inf"})} {total}')
                lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(sample['sum'])}")
                lines.append(f"{name}_count{_fmt_labels(labels)} {sample['count']}")
            else:
                lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(sample['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Structured bench reports
# ----------------------------------------------------------------------
@dataclass
class BenchReport:
    """Machine-readable record of one benchmark artifact.

    ``metrics`` holds named scalars (rates, speedups, gate values);
    ``series`` holds named ``{x: y}`` curves (the Fig. 4/5/8 sweeps);
    ``params`` records the configuration that produced them.  ``write``
    emits ``<results_dir>/<name>.json`` alongside the existing ``.txt``
    artifact of the same name.
    """

    name: str
    title: str = ""
    params: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The full report document, environment stamped at call time.

        ``created_unix`` is the document's one wall-clock anchor;
        ``created_monotonic`` orders reports written by the same process
        even if the wall clock steps between writes.
        """
        return {
            "schema": BENCH_SCHEMA,
            "name": self.name,
            "title": self.title,
            "created_unix": time.time(),
            "created_monotonic": time.monotonic(),
            "environment": {
                "python": platform.python_version(),
                "platform": platform.platform(),
            },
            "params": dict(self.params),
            "metrics": dict(self.metrics),
            "series": {k: dict(v) for k, v in self.series.items()},
        }

    def write(self, results_dir: Union[str, Path]) -> Path:
        """Write ``<results_dir>/<name>.json``; returns the path."""
        results_dir = Path(results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        path = results_dir / f"{self.name}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BenchReport":
        """Read a report written by :meth:`write`; schema-checked."""
        data = json.loads(Path(path).read_text())
        if data.get("schema") != BENCH_SCHEMA:
            raise ValueError(f"unsupported bench schema {data.get('schema')!r}")
        return cls(
            name=data["name"],
            title=data.get("title", ""),
            params=data.get("params", {}),
            metrics=data.get("metrics", {}),
            series=data.get("series", {}),
        )
