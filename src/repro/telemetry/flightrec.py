"""Flight recorder: a bounded ring buffer of structured runtime events.

Where the metrics registry answers "how much" and the tracer answers
"how long", the flight recorder answers "what just happened" — the last
N structured events (compile/cache operations, plan decisions, shard
dispatches, worker crashes, steals/migrations, validation failures)
kept in a fixed-size ring so a crash can be explained after the fact
without any always-on logging cost.

The recorder is **enabled by default**: recording one event is a lock,
a dict build, and a deque append, and events are emitted at
orchestration frequency (per dispatch / compile / plan), never per bit,
so the steady-state cost is negligible.  ``disable()`` reduces
``record()`` to a single flag check for the paranoid path.

Two consumers matter:

* **dump-on-error** — when a shard fails, the worker's recent events
  ship back with the failure and
  :func:`repro.telemetry.context.attach_flight_dump` pins the combined
  dump onto the raised :class:`~repro.errors.StreamError` (its
  ``context["flight_recorder"]`` entry), so the exception itself names
  the failed worker and what it was doing;
* **``repro dump``** — the CLI prints the live ring (or a ring saved
  with :meth:`FlightRecorder.save` by an earlier ``--telemetry`` run).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

#: Environment variable naming where CLI runs persist the event ring.
FLIGHTREC_PATH_ENV = "REPRO_FLIGHTREC_PATH"

#: Default ring capacity — enough to span several dispatch rounds.
DEFAULT_CAPACITY = 256


def default_dump_path() -> Path:
    """Where CLI runs drop their event ring (``$REPRO_FLIGHTREC_PATH``
    or ``.repro-flightrec.jsonl`` in the working directory)."""
    return Path(os.environ.get(FLIGHTREC_PATH_ENV, ".repro-flightrec.jsonl"))


class FlightRecorder:
    """Thread-safe bounded ring of structured events.

    Each event is a plain dict: ``seq`` (monotonic, survives eviction),
    ``ts_mono`` (:func:`time.monotonic` seconds — the ordering/duration
    clock), ``ts`` (unix seconds *derived* from ``ts_mono`` against one
    wall-clock anchor captured at construction), ``kind`` (a short
    category like ``"dispatch"`` or ``"worker-crash"``), ``message``,
    ``worker`` (empty for parent-side events) and free-form ``attrs``.

    Events are **never** stamped with :func:`time.time` directly: a
    wall-clock step (NTP slew, manual adjustment) mid-run would reorder
    the ring and make inter-event deltas negative.  Instead the recorder
    captures a single ``(wall, monotonic)`` anchor pair when it is
    created; every event's ``ts`` is ``anchor_wall + (ts_mono -
    anchor_mono)``, so the sequence stays monotone no matter what the
    wall clock does, and :meth:`save` persists the anchor with the dump
    so consumers can still place events in absolute time.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True):
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity}")
        self._events: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._enabled = enabled
        self._seq = 0
        self._lock = threading.Lock()
        # One wall-clock anchor per recorder lifetime (and per dump):
        # event wall times are derived, never re-read from time.time().
        self._anchor_wall = time.time()
        self._anchor_mono = time.monotonic()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether ``record()`` stores anything."""
        return self._enabled

    def enable(self) -> None:
        """Turn event recording on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn event recording off (one flag check per ``record()``)."""
        self._enabled = False

    @property
    def capacity(self) -> int:
        """Maximum events retained."""
        return self._events.maxlen or 0

    @property
    def anchor(self) -> Dict[str, float]:
        """The ``(wall, monotonic)`` anchor event wall times derive from."""
        return {"wall_unix": self._anchor_wall, "monotonic": self._anchor_mono}

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # ------------------------------------------------------------------
    def record(
        self, kind: str, message: str = "", worker: str = "", **attrs: object
    ) -> None:
        """Append one event (no-op while disabled)."""
        if not self._enabled:
            return
        mono = time.monotonic()
        with self._lock:
            self._seq += 1
            self._events.append({
                "seq": self._seq,
                "ts_mono": mono,
                "ts": self._anchor_wall + (mono - self._anchor_mono),
                "kind": kind,
                "message": message,
                "worker": worker,
                "attrs": attrs,
            })

    def extend(self, events: Iterable[Dict[str, object]]) -> None:
        """Merge pre-built events (a worker's shipped tail) into the ring.

        Each event is re-sequenced locally so ``seq`` stays monotonic in
        this ring; the original ``worker`` field is preserved, which is
        how worker-side events stay attributable after the merge.
        Shipped ``ts_mono`` stamps are kept as-is: on Linux
        ``time.monotonic`` is the system-wide ``CLOCK_MONOTONIC``, so
        same-machine worker events remain comparable, and attribution
        never depends on timestamps anyway (``seq`` + ``worker`` do).
        """
        if not self._enabled:
            return
        with self._lock:
            for event in events:
                self._seq += 1
                merged = dict(event)
                merged["seq"] = self._seq
                self._events.append(merged)

    def cursor(self) -> int:
        """The current sequence number; events recorded after this call
        have ``seq`` greater than the returned value."""
        with self._lock:
            return self._seq

    # ------------------------------------------------------------------
    def events(
        self, since: Optional[int] = None, limit: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """Buffered events, oldest first.

        ``since`` keeps only events with ``seq`` greater than the given
        cursor; ``limit`` keeps only the newest N of what remains.
        """
        with self._lock:
            out = [dict(e) for e in self._events]
        if since is not None:
            out = [e for e in out if e["seq"] > since]
        if limit is not None:
            out = out[-limit:]
        return out

    def clear(self) -> None:
        """Drop every buffered event (the sequence counter keeps going)."""
        with self._lock:
            self._events.clear()

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the ring as JSON lines: one anchor line, one event per line.

        The first line carries the recorder's wall-clock anchor (see the
        class docstring) so a dump contains exactly one wall-time
        reference; every event line's ``ts_mono`` is relative to that
        anchor's ``monotonic`` value.
        """
        path = Path(path)
        lines = [json.dumps({"anchor": self.anchor}, sort_keys=True)]
        lines += [json.dumps(e, sort_keys=True, default=str) for e in self.events()]
        path.write_text("\n".join(lines) + "\n")
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> List[Dict[str, object]]:
        """Read events saved by :meth:`save`, oldest first.

        The anchor header line (and any pre-anchor legacy dump lines
        without one) is filtered out: only event records are returned.
        """
        events = []
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "anchor" in record and "seq" not in record:
                continue
            events.append(record)
        return events

    @staticmethod
    def load_anchor(path: Union[str, Path]) -> Optional[Dict[str, float]]:
        """The wall-clock anchor stored in a dump, if it has one
        (dumps written before the anchor line existed return ``None``)."""
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "anchor" in record and "seq" not in record:
                return {k: float(v) for k, v in record["anchor"].items()}
            return None
        return None


def format_events(events: List[Dict[str, object]]) -> str:
    """Human-readable rendering of a dump, one line per event."""
    if not events:
        return "(no events recorded)"
    lines = []
    for event in events:
        worker = event.get("worker") or "-"
        attrs = event.get("attrs") or {}
        suffix = (
            " " + " ".join(f"{k}={v}" for k, v in attrs.items()) if attrs else ""
        )
        message = event.get("message", "")
        lines.append(
            f"#{event.get('seq', '?'):>4} {event.get('kind', '?'):<16} "
            f"worker={worker:<8} {message}{suffix}"
        )
    return "\n".join(lines)


_DEFAULT_RECORDER = FlightRecorder()


def default_flight_recorder() -> FlightRecorder:
    """The process-wide shared flight recorder (enabled by default)."""
    return _DEFAULT_RECORDER


def set_default_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the process-wide flight recorder; returns the previous one."""
    global _DEFAULT_RECORDER
    if not isinstance(recorder, FlightRecorder):
        raise TypeError(f"expected a FlightRecorder, got {type(recorder).__name__}")
    previous = _DEFAULT_RECORDER
    _DEFAULT_RECORDER = recorder
    return previous
