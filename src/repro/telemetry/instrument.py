"""Instrumentation hooks: a decorator plus explicit bridges.

Two flavors:

* :func:`instrumented` — wrap any callable in a call counter, a duration
  histogram, and (when the tracer is enabled) a span.  When both the
  registry and the tracer are disabled the wrapper short-circuits to the
  raw call after two attribute checks.
* explicit bridges — :func:`record_run_cycles`,
  :func:`record_burst_utilization`, :func:`record_pipeline_trace` and
  :func:`record_activity_report` publish the repo's existing ad-hoc
  instruments (DREAM cycle ledgers, PiCoGA occupancy traces and toggle
  counts) as registry metrics.  They are duck-typed on purpose: the
  telemetry package imports nothing from the rest of ``repro``, so it
  can be imported from any layer without cycles.
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Callable, Mapping, Optional

from repro.telemetry.registry import MetricsRegistry, default_registry
from repro.telemetry.tracing import Tracer, default_tracer

_CALL_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def instrumented(
    name: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> Callable:
    """Decorator: count calls, time them, and open a span around them.

    Publishes ``<name>_calls_total`` and ``<name>_seconds`` (histogram);
    the span is named ``<name>``.  ``name`` defaults to the function's
    qualified name with dots normalized to underscores for the metrics.
    """

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__.lower().replace(".", "_")
        reg = registry if registry is not None else default_registry()
        tr = tracer if tracer is not None else default_tracer()
        calls = reg.counter(f"{label}_calls_total", f"Calls to {fn.__qualname__}")
        seconds = reg.histogram(
            f"{label}_seconds", f"Wall-clock seconds per {fn.__qualname__} call",
            buckets=_CALL_BUCKETS,
        )

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            metrics_on = reg.enabled
            spans_on = tr.enabled
            if not metrics_on and not spans_on:
                return fn(*args, **kwargs)
            t0 = perf_counter()
            if spans_on:
                with tr.span(label):
                    result = fn(*args, **kwargs)
            else:
                result = fn(*args, **kwargs)
            if metrics_on:
                calls.inc()
                seconds.observe(perf_counter() - t0)
            return result

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


# ----------------------------------------------------------------------
# Bridges from the repo's existing instruments
# ----------------------------------------------------------------------
def record_run_cycles(
    workload: str,
    cycles: Mapping[str, int],
    payload_bits: int,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Publish one executed/analytic run's cycle ledger.

    ``workload`` should be a low-cardinality kind (``crc-single``,
    ``crc-interleaved``, ``scrambler``), not the full per-run workload
    string — label sets are bounded and sweeps vary M freely.
    """
    reg = registry if registry is not None else default_registry()
    if not reg.enabled:
        return
    runs = reg.counter(
        "dream_executed_runs_total", "DREAM runs by workload kind", labels=("workload",)
    )
    cyc = reg.counter(
        "dream_executed_cycles_total",
        "DREAM cycles charged, by workload kind and ledger phase",
        labels=("workload", "phase"),
    )
    bits = reg.counter(
        "dream_executed_payload_bits_total",
        "Payload bits pushed through DREAM runs",
        labels=("workload",),
    )
    runs.labels(workload=workload).inc()
    bits.labels(workload=workload).inc(payload_bits)
    for phase, count in cycles.items():
        cyc.labels(workload=workload, phase=phase).inc(count)


def record_burst_utilization(
    op_name: str,
    rows: int,
    initiation_interval: int,
    n_blocks: int,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Closed-form occupancy accounting for a burst of ``n_blocks``.

    Matches :meth:`repro.picoga.trace.PipelineTrace.utilization` without
    materializing the occupancy matrix: block *b* issues at ``b * II``
    and holds one row per cycle for ``rows`` cycles.
    """
    reg = registry if registry is not None else default_registry()
    if not reg.enabled or n_blocks < 1:
        return
    rows = max(rows, 1)
    cycles = (n_blocks - 1) * initiation_interval + rows
    utilization = (n_blocks * rows) / (cycles * rows)
    reg.counter(
        "picoga_blocks_issued_total", "Blocks issued through PiCoGA bursts",
        labels=("op",),
    ).labels(op=op_name).inc(n_blocks)
    reg.counter(
        "picoga_burst_cycles_total", "Pipeline cycles spanned by PiCoGA bursts",
        labels=("op",),
    ).labels(op=op_name).inc(cycles)
    reg.gauge(
        "picoga_pipeline_utilization",
        "Fraction of (cycle, row) slots busy in the most recent burst",
        labels=("op",),
    ).labels(op=op_name).set(utilization)


def record_pipeline_trace(trace, registry: Optional[MetricsRegistry] = None) -> None:
    """Publish a :class:`repro.picoga.trace.PipelineTrace` (duck-typed:
    needs ``op_name``, ``rows``, ``initiation_interval``, ``cycles``,
    ``utilization()``)."""
    reg = registry if registry is not None else default_registry()
    if not reg.enabled:
        return
    reg.counter(
        "picoga_blocks_issued_total", "Blocks issued through PiCoGA bursts",
        labels=("op",),
    ).labels(op=trace.op_name).inc(
        (trace.cycles - trace.rows) // max(trace.initiation_interval, 1) + 1
    )
    reg.counter(
        "picoga_burst_cycles_total", "Pipeline cycles spanned by PiCoGA bursts",
        labels=("op",),
    ).labels(op=trace.op_name).inc(trace.cycles)
    reg.gauge(
        "picoga_pipeline_utilization",
        "Fraction of (cycle, row) slots busy in the most recent burst",
        labels=("op",),
    ).labels(op=trace.op_name).set(trace.utilization())


def record_activity_report(
    op_name: str, report, registry: Optional[MetricsRegistry] = None
) -> None:
    """Publish an :class:`repro.picoga.activity.ActivityReport` (duck-typed:
    needs ``blocks``, ``cell_evaluations``, ``cell_toggles``,
    ``output_toggles``, ``activity_factor``)."""
    reg = registry if registry is not None else default_registry()
    if not reg.enabled:
        return
    blocks = reg.counter(
        "picoga_activity_blocks_total", "Blocks measured for switching activity",
        labels=("op",),
    )
    evals = reg.counter(
        "picoga_cell_evaluations_total", "Cell evaluations during activity bursts",
        labels=("op",),
    )
    toggles = reg.counter(
        "picoga_cell_toggles_total", "Cell-output toggles during activity bursts",
        labels=("op",),
    )
    out_toggles = reg.counter(
        "picoga_output_toggles_total", "Operation-output toggles during activity bursts",
        labels=("op",),
    )
    factor = reg.gauge(
        "picoga_activity_factor", "Most recent measured switching-activity factor",
        labels=("op",),
    )
    blocks.labels(op=op_name).inc(report.blocks)
    evals.labels(op=op_name).inc(report.cell_evaluations)
    toggles.labels(op=op_name).inc(report.cell_toggles)
    out_toggles.labels(op=op_name).inc(report.output_toggles)
    factor.labels(op=op_name).set(report.activity_factor)
