"""Cross-process trace context propagation and worker telemetry capture.

The parallel engine dispatches shards to thread or process pools; this
module is how telemetry crosses that boundary so the parent ends up with
**one** coherent picture:

* :class:`TraceContext` — a small picklable record of the parent's trace
  ids plus three switches (metrics / spans / events) saying what the
  worker should capture.  :meth:`TraceContext.capture` builds it from
  the parent's live defaults at dispatch time.
* :class:`WorkerCapture` — the worker-side harness.  ``begin()`` enables
  the worker-local defaults per the context and snapshots a metrics
  baseline; ``finish()`` produces a picklable *payload*: the registry
  delta since the baseline, a detached span subtree recorded under the
  parent's ids, the worker's flight-recorder tail, and wall/CPU timings.
* :func:`merge_worker_payload` — the parent-side inverse: folds the
  metrics delta into the parent registry under a ``worker=<id>`` label,
  grafts the span subtree under the parent's dispatch span, and merges
  the shipped events into the parent's flight recorder.
* :func:`attach_flight_dump` — pins a flight-recorder dump (failed
  worker + its last events) onto an exception's ``context`` so crash
  post-mortems travel with the error itself.

Everything here is orchestration-frequency code (per shard dispatch,
never per bit), so clarity beats micro-optimization.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.telemetry.flightrec import default_flight_recorder
from repro.telemetry.registry import default_registry, snapshot_delta
from repro.telemetry.tracing import Span, default_tracer


@dataclass(frozen=True)
class TraceContext:
    """What a shard dispatch carries across the process boundary.

    ``trace_id`` / ``span_id`` identify the parent's open dispatch span
    (empty when the parent tracer is off); the three booleans tell the
    worker which telemetry layers to capture and ship back.
    """

    trace_id: str = ""
    span_id: str = ""
    metrics: bool = False
    spans: bool = False
    events: bool = False

    @property
    def active(self) -> bool:
        """Whether the worker has anything to capture at all."""
        return self.metrics or self.spans or self.events

    def to_dict(self) -> dict:
        """Picklable/JSON-able form (travels with the shard arguments)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "metrics": self.metrics,
            "spans": self.spans,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        """Rebuild a context shipped via :meth:`to_dict`."""
        return cls(
            trace_id=data.get("trace_id", ""),
            span_id=data.get("span_id", ""),
            metrics=bool(data.get("metrics", False)),
            spans=bool(data.get("spans", False)),
            events=bool(data.get("events", False)),
        )

    @classmethod
    def capture(cls, parent_span: Optional[Span] = None, remote: bool = True) -> "TraceContext":
        """The context for a dispatch happening *now*, from the live
        defaults.

        ``parent_span`` is the open span the shard should hang under
        (usually the pool's dispatch span).  ``remote=True`` (process
        pools) requests metrics and event capture — worker-local state
        is invisible to the parent and must ship back; ``remote=False``
        (thread pools) requests only span capture, because threads
        already publish metrics and events into the parent's shared
        defaults and shipping a delta would double-count.
        """
        tracer = default_tracer()
        if parent_span is None and tracer.enabled:
            parent_span = tracer.current_span()
        return cls(
            trace_id=parent_span.trace_id if parent_span else "",
            span_id=parent_span.span_id if parent_span else "",
            metrics=remote and default_registry().enabled,
            spans=tracer.enabled,
            events=remote and default_flight_recorder().enabled,
        )


def worker_id() -> str:
    """This worker's label: the process id (unique per pool child)."""
    return str(os.getpid())


class WorkerCapture:
    """Worker-side capture harness for one shard task.

    Usage (see ``_ctx_shard_call`` in :mod:`repro.engine.parallel`)::

        cap = WorkerCapture(ctx, worker=worker_id(), name="worker.shard")
        cap.begin()
        try:
            result = fn(*args)
        except Exception as exc:
            return ("err", cap.finish(error=exc), ...)
        return ("ok", cap.finish(), result)

    ``finish()`` returns the picklable payload described in
    :func:`merge_worker_payload`; calling it exactly once is the
    caller's job (it closes the captured span).
    """

    def __init__(self, ctx: TraceContext, worker: str, name: str = "worker.shard",
                 **attributes: object):
        self._ctx = ctx
        self._worker = worker
        self._name = name
        self._attributes = dict(attributes)
        self._baseline: Optional[Dict[str, dict]] = None
        self._span_cm = None
        self._span: Optional[Span] = None
        self._cursor: Optional[int] = None
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def begin(self) -> None:
        """Enable worker-local capture per the context; snapshot baselines."""
        ctx = self._ctx
        if ctx.metrics:
            registry = default_registry()
            registry.enable()
            self._baseline = registry.snapshot()
        if ctx.events:
            recorder = default_flight_recorder()
            recorder.enable()
            self._cursor = recorder.cursor()
        if ctx.spans:
            tracer = default_tracer()
            tracer.enable()
            self._span_cm = tracer.capture(
                self._name,
                trace_id=ctx.trace_id,
                parent_id=ctx.span_id,
                worker=self._worker,
                **self._attributes,
            )
            self._span = self._span_cm.__enter__()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def finish(self, error: Optional[BaseException] = None) -> dict:
        """Close the capture and return the picklable payload.

        On ``error`` the failure is recorded as a ``worker-crash`` event
        (and on the span) first, so the shipped tail explains the crash.
        """
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        ctx = self._ctx
        if error is not None and ctx.events:
            default_flight_recorder().record(
                "worker-crash",
                f"{type(error).__name__}: {error}",
                worker=self._worker,
                task=self._name,
            )
        if self._span_cm is not None:
            if self._span is not None and error is not None:
                self._span.attributes["error"] = f"{type(error).__name__}: {error}"
            self._span_cm.__exit__(None, None, None)
            self._span_cm = None
        payload: dict = {
            "worker": self._worker,
            "wall_s": wall,
            "cpu_s": cpu,
            "metrics": None,
            "span": None,
            "events": None,
        }
        if ctx.metrics and self._baseline is not None:
            registry = default_registry()
            payload["metrics"] = snapshot_delta(self._baseline, registry.snapshot())
        if ctx.spans and self._span is not None:
            payload["span"] = self._span.to_dict()
        if ctx.events and self._cursor is not None:
            payload["events"] = default_flight_recorder().events(since=self._cursor)
        return payload


def merge_worker_payload(
    payload: dict, parent_span: Optional[Span] = None
) -> Optional[Span]:
    """Fold one worker payload into the parent's live defaults.

    * ``metrics`` (a :func:`~repro.telemetry.registry.snapshot_delta`)
      merge additively into the parent registry with a ``worker=<id>``
      label appended to every sample;
    * ``span`` (a serialized detached subtree) is re-homed onto the
      parent's trace and appended under ``parent_span`` (returned; the
      caller may decorate it further);
    * ``events`` extend the parent flight recorder, keeping their
      original ``worker`` attribution.
    """
    worker = str(payload.get("worker", ""))
    metrics = payload.get("metrics")
    if metrics:
        default_registry().merge_snapshot(metrics, extra_labels={"worker": worker})
    events = payload.get("events")
    if events:
        default_flight_recorder().extend(events)
    span_dict = payload.get("span")
    grafted: Optional[Span] = None
    if span_dict is not None:
        grafted = (
            span_dict if isinstance(span_dict, Span) else Span.from_dict(span_dict)
        )
        if parent_span is not None:
            grafted.retrace(parent_span.trace_id, parent_id=parent_span.span_id)
            parent_span.children.append(grafted)
    return grafted


def attach_flight_dump(
    exc: BaseException,
    worker: str = "",
    events: Optional[List[dict]] = None,
    limit: int = 32,
) -> BaseException:
    """Attach a flight-recorder dump to an exception and return it.

    The dump lands in the exception's ``context`` dict (see
    :meth:`repro.errors.ReproError.with_context`; non-Repro exceptions
    get a plain ``context`` attribute) under ``"flight_recorder"``:
    ``{"worker": <failed worker>, "events": [...]}`` — the shipped
    worker tail when available, else the parent's own recent events.
    """
    dump_events = list(events) if events else default_flight_recorder().events(limit=limit)
    dump = {"worker": worker, "events": dump_events[-limit:]}
    with_context = getattr(exc, "with_context", None)
    if callable(with_context):
        with_context(flight_recorder=dump)
    else:
        context = getattr(exc, "context", None)
        if not isinstance(context, dict):
            context = {}
            exc.context = context
        context["flight_recorder"] = dump
    return exc


__all__ = [
    "TraceContext",
    "WorkerCapture",
    "attach_flight_dump",
    "merge_worker_payload",
    "worker_id",
]
