"""Chrome trace-event JSON export — span trees as Perfetto timelines.

Renders finished :class:`~repro.telemetry.tracing.Span` trees in the
Chrome trace-event format (the ``{"traceEvents": [...]}`` JSON object
``chrome://tracing`` and https://ui.perfetto.dev load directly), so a
``batch_crc(auto=True)`` run's planner → dispatch → per-worker shard
timeline can be inspected visually.

Mapping:

* every span becomes one complete (``"ph": "X"``) event with
  microsecond ``ts``/``dur`` (timestamps are rebased so the earliest
  span starts at 0);
* all events share one ``pid``; the ``tid`` encodes *which worker* ran
  the span — lane 0 for the parent, one lane per distinct ``worker``
  attribute — and matching ``thread_name`` metadata (``"M"``) events
  label the lanes;
* span attributes and ids land in ``args`` (stringified, so arbitrary
  attribute values stay JSON-safe).
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Union

from repro.telemetry.tracing import Span, Tracer

#: ``pid`` used for every event (one process-wide timeline).
TRACE_PID = 1


def spans_to_chrome(roots: Sequence[Span]) -> dict:
    """The Chrome trace-event object for a set of finished span trees."""
    events: List[dict] = []
    lanes: Dict[str, int] = {"": 0}  # worker label -> tid ("" = parent)
    if roots:
        base = min(root.start for root in roots)
    else:
        base = 0.0

    def lane_of(sp: Span, inherited: str) -> str:
        worker = str(sp.attributes.get("worker", "") or inherited)
        if worker not in lanes:
            lanes[worker] = len(lanes)
        return worker

    def walk(sp: Span, inherited: str) -> None:
        worker = lane_of(sp, inherited)
        args = {str(k): str(v) for k, v in sp.attributes.items()}
        if sp.trace_id:
            args["trace_id"] = sp.trace_id
        if sp.span_id:
            args["span_id"] = sp.span_id
        events.append({
            "name": sp.name,
            "cat": "repro",
            "ph": "X",
            "ts": (sp.start - base) * 1e6,
            "dur": sp.duration * 1e6,
            "pid": TRACE_PID,
            "tid": lanes[worker],
            "args": args,
        })
        for child in sp.children:
            walk(child, worker)

    for root in roots:
        walk(root, "")
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": f"worker {worker}" if worker else "main"},
        }
        for worker, tid in sorted(lanes.items(), key=lambda kv: kv[1])
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def render_chrome_trace(source: Union[Tracer, Sequence[Span]]) -> str:
    """JSON text of :func:`spans_to_chrome` for a tracer or span list."""
    roots = source.roots() if isinstance(source, Tracer) else list(source)
    return json.dumps(spans_to_chrome(roots), indent=2, sort_keys=True) + "\n"
