"""repro.telemetry — unified metrics, tracing, and structured reporting.

A zero-dependency observability layer shared by every hot path in the
repo: the compile cache, the bit-sliced batch kernels, the streaming
pipelines, DREAM executed mode, and the PiCoGA instruments
(:mod:`repro.picoga.trace`, :mod:`repro.picoga.activity`) all publish
into one process-wide :class:`MetricsRegistry` and one :class:`Tracer`.

* :mod:`repro.telemetry.registry` — thread-safe Counter/Gauge/Histogram
  families with bounded label cardinality; near-zero overhead when the
  registry is disabled.
* :mod:`repro.telemetry.tracing` — nestable ``span()`` context manager
  with wall-clock timings and a bounded in-memory trace buffer.
* :mod:`repro.telemetry.export` — JSON-lines snapshots (lossless round
  trip), Prometheus text exposition, and the :class:`BenchReport`
  writer behind ``benchmarks/results/*.json``.
* :mod:`repro.telemetry.instrument` — an ``@instrumented`` decorator
  plus explicit bridges from the pre-existing instruments.

See ``docs/OBSERVABILITY.md`` for the tour; ``repro stats`` and the
``--telemetry`` CLI flag are the command-line surface.
"""

from repro.telemetry.export import (
    BenchReport,
    default_snapshot_path,
    parse_json_lines,
    read_json_lines,
    render_prometheus,
    to_json_lines,
    write_json_lines,
)
from repro.telemetry.instrument import (
    instrumented,
    record_activity_report,
    record_burst_utilization,
    record_pipeline_trace,
    record_run_cycles,
)
from repro.telemetry.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    default_registry,
)
from repro.telemetry.tracing import Span, Tracer, default_tracer, format_span_tree

__all__ = [
    "BenchReport",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "default_registry",
    "default_snapshot_path",
    "default_tracer",
    "format_span_tree",
    "instrumented",
    "parse_json_lines",
    "read_json_lines",
    "record_activity_report",
    "record_burst_utilization",
    "record_pipeline_trace",
    "record_run_cycles",
    "render_prometheus",
    "to_json_lines",
    "write_json_lines",
]
