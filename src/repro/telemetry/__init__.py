"""repro.telemetry — distributed metrics, tracing, and flight recording.

A zero-dependency observability layer shared by every hot path in the
repo: the compile cache, the bit-sliced batch kernels, the streaming
pipelines, DREAM executed mode, and the PiCoGA instruments
(:mod:`repro.picoga.trace`, :mod:`repro.picoga.activity`) all publish
into one process-wide :class:`MetricsRegistry`, one :class:`Tracer`, and
one :class:`FlightRecorder` — and since the v2 rework those defaults
stitch across worker pools too: a :class:`TraceContext` travels with
every shard dispatch, workers capture deltas locally, and the parent
merges them back under ``worker=<id>`` labels.

* :mod:`repro.telemetry.registry` — thread-safe Counter/Gauge/Histogram
  families with bounded label cardinality, additive snapshot merging,
  and near-zero overhead when disabled.
* :mod:`repro.telemetry.tracing` — nestable ``span()`` context manager
  with trace/span ids, serializable span trees, and a bounded buffer.
* :mod:`repro.telemetry.context` — cross-process context propagation:
  worker-side capture and parent-side merge.
* :mod:`repro.telemetry.flightrec` — bounded ring buffer of structured
  events with dump-on-error crash post-mortems.
* :mod:`repro.telemetry.chrometrace` — Chrome trace-event JSON export
  (Perfetto-loadable timelines).
* :mod:`repro.telemetry.export` — JSON-lines snapshots (metrics + span
  records, lossless round trip), Prometheus text exposition, and the
  :class:`BenchReport` writer behind ``benchmarks/results/*.json``.
* :mod:`repro.telemetry.instrument` — an ``@instrumented`` decorator
  plus explicit bridges from the pre-existing instruments.

See ``docs/OBSERVABILITY.md`` for the tour; ``repro stats``, ``repro
dump`` and the ``--telemetry`` CLI flag are the command-line surface.
"""

from repro.telemetry.chrometrace import render_chrome_trace, spans_to_chrome
from repro.telemetry.context import (
    TraceContext,
    WorkerCapture,
    attach_flight_dump,
    merge_worker_payload,
)
from repro.telemetry.export import (
    BenchReport,
    default_snapshot_path,
    parse_json_lines,
    parse_spans,
    read_json_lines,
    read_spans,
    render_prometheus,
    to_json_lines,
    write_json_lines,
)
from repro.telemetry.flightrec import (
    FlightRecorder,
    default_dump_path,
    default_flight_recorder,
    format_events,
    set_default_flight_recorder,
)
from repro.telemetry.instrument import (
    instrumented,
    record_activity_report,
    record_burst_utilization,
    record_pipeline_trace,
    record_run_cycles,
)
from repro.telemetry.registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    bind_families,
    default_registry,
    set_default_registry,
    snapshot_delta,
)
from repro.telemetry.tracing import (
    Span,
    Tracer,
    default_tracer,
    format_span_tree,
    set_default_tracer,
)

__all__ = [
    "BenchReport",
    "Counter",
    "DEFAULT_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "WorkerCapture",
    "attach_flight_dump",
    "bind_families",
    "default_dump_path",
    "default_flight_recorder",
    "default_registry",
    "default_snapshot_path",
    "default_tracer",
    "format_events",
    "format_span_tree",
    "instrumented",
    "merge_worker_payload",
    "parse_json_lines",
    "parse_spans",
    "read_json_lines",
    "read_spans",
    "record_activity_report",
    "record_burst_utilization",
    "record_pipeline_trace",
    "record_run_cycles",
    "render_chrome_trace",
    "render_prometheus",
    "set_default_flight_recorder",
    "set_default_registry",
    "set_default_tracer",
    "snapshot_delta",
    "spans_to_chrome",
    "to_json_lines",
    "write_json_lines",
]
