"""Nestable wall-clock spans with a bounded in-memory trace buffer.

A :class:`Tracer` records how long named regions take and how they nest
— ``dream.execute_crc`` inside ``cli.perf``, compile inside execute —
the software analogue of the pipeline occupancy traces
:mod:`repro.picoga.trace` draws for the array.  Spans are per-thread
(nesting follows each thread's own call stack) and finished roots land
in a bounded buffer, so a long-running process can leave tracing on
without unbounded growth.

The default tracer starts **disabled**: ``span()`` then costs one flag
check and yields ``None``.  The CLI's ``--telemetry`` flag (and tests)
enable it explicitly.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    name: str
    attributes: Dict[str, object] = field(default_factory=dict)
    start: float = 0.0  # perf_counter seconds; meaningful only relatively
    duration: float = 0.0
    children: List["Span"] = field(default_factory=list)

    @property
    def duration_ms(self) -> float:
        return self.duration * 1e3

    def subtree_size(self) -> int:
        return 1 + sum(child.subtree_size() for child in self.children)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "duration_s": self.duration,
            "children": [c.to_dict() for c in self.children],
        }


class Tracer:
    """Collects spans per thread; finished roots go to a bounded buffer."""

    def __init__(self, max_spans: int = 4096, max_roots: int = 256, enabled: bool = False):
        if max_spans < 1 or max_roots < 1:
            raise ValueError("span buffer bounds must be >= 1")
        self._enabled = enabled
        self._max_spans = max_spans
        self._roots: "deque[Span]" = deque()
        self._max_roots = max_roots
        self._stored = 0
        self.dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Optional[Span]]:
        """Time a region; nests under the thread's innermost open span."""
        if not self._enabled:
            yield None
            return
        stack: List[Span] = getattr(self._local, "stack", None) or []
        self._local.stack = stack
        sp = Span(name=name, attributes=attributes, start=perf_counter())
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.duration = perf_counter() - sp.start
            stack.pop()
            if stack:
                stack[-1].children.append(sp)
            else:
                self._record_root(sp)

    def _record_root(self, sp: Span) -> None:
        size = sp.subtree_size()
        with self._lock:
            if self._stored + size > self._max_spans:
                self.dropped += size
                return
            self._roots.append(sp)
            self._stored += size
            while len(self._roots) > self._max_roots:
                evicted = self._roots.popleft()
                self._stored -= evicted.subtree_size()

    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    @property
    def span_count(self) -> int:
        """Spans currently held in the buffer (all depths)."""
        with self._lock:
            return self._stored

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self._stored = 0
            self.dropped = 0


def format_span_tree(roots: Sequence[Span], indent: str = "  ") -> str:
    """ASCII rendering of finished span trees, one line per span."""
    if not roots:
        return "(no spans recorded)"
    lines: List[str] = []

    def walk(sp: Span, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sp.attributes.items())
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{indent * depth}{sp.name}  {sp.duration_ms:.3f} ms{suffix}")
        for child in sp.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


_DEFAULT_TRACER = Tracer()


def default_tracer() -> Tracer:
    """The process-wide shared tracer (disabled until explicitly enabled)."""
    return _DEFAULT_TRACER
