"""Nestable wall-clock spans with IDs and a bounded in-memory buffer.

A :class:`Tracer` records how long named regions take and how they nest
— ``dream.execute_crc`` inside ``cli.perf``, compile inside execute —
the software analogue of the pipeline occupancy traces
:mod:`repro.picoga.trace` draws for the array.  Spans are per-thread
(nesting follows each thread's own call stack) and finished roots land
in a bounded buffer, so a long-running process can leave tracing on
without unbounded growth.

Every span carries a ``trace_id`` (shared by the whole tree) and its own
``span_id``; both are random 64-bit hex strings.  Spans serialize with
:meth:`Span.to_dict` / :meth:`Span.from_dict`, which is how worker
processes ship their shard spans back to the parent — the
:class:`~repro.telemetry.context.TraceContext` carries the parent's IDs
out, :meth:`Tracer.capture` records a detached subtree under them, and
the parent grafts the subtree into its own open span
(:func:`repro.telemetry.context.merge_worker_payload`).

The default tracer starts **disabled**: ``span()`` then costs one flag
check and yields ``None``.  The CLI's ``--telemetry`` flag (and tests)
enable it explicitly.
"""

from __future__ import annotations

import threading
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence


def new_id() -> str:
    """A random 64-bit id as 16 hex digits (span and trace ids)."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    name: str
    attributes: Dict[str, object] = field(default_factory=dict)
    start: float = 0.0  # perf_counter seconds; meaningful only relatively
    duration: float = 0.0
    children: List["Span"] = field(default_factory=list)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds."""
        return self.duration * 1e3

    def subtree_size(self) -> int:
        """Number of spans in this subtree (including this one)."""
        return 1 + sum(child.subtree_size() for child in self.children)

    def to_dict(self) -> dict:
        """JSON-able form; round-trips through :meth:`from_dict`."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "start_s": self.start,
            "duration_s": self.duration,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            attributes=dict(data.get("attributes", {})),
            start=float(data.get("start_s", 0.0)),
            duration=float(data.get("duration_s", 0.0)),
            trace_id=data.get("trace_id", ""),
            span_id=data.get("span_id", ""),
            parent_id=data.get("parent_id", ""),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )

    def retrace(self, trace_id: str, parent_id: str = "") -> "Span":
        """Re-home this subtree under a new trace (in place; returns self).

        Used when grafting a worker-recorded subtree into the parent's
        tree: every span adopts the parent's ``trace_id`` and the root's
        ``parent_id`` is pointed at the graft site.
        """
        self.parent_id = parent_id
        stack = [self]
        while stack:
            sp = stack.pop()
            sp.trace_id = trace_id
            for child in sp.children:
                child.parent_id = sp.span_id
                stack.append(child)
        return self


class Tracer:
    """Collects spans per thread; finished roots go to a bounded buffer."""

    def __init__(self, max_spans: int = 4096, max_roots: int = 256, enabled: bool = False):
        if max_spans < 1 or max_roots < 1:
            raise ValueError("span buffer bounds must be >= 1")
        self._enabled = enabled
        self._max_spans = max_spans
        self._roots: "deque[Span]" = deque()
        self._max_roots = max_roots
        self._stored = 0
        self.dropped = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether ``span()`` records anything."""
        return self._enabled

    def enable(self) -> None:
        """Turn span recording on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn span recording off (one flag check per ``span()``)."""
        self._enabled = False

    # ------------------------------------------------------------------
    def _open(self, name: str, attributes: Dict[str, object]):
        """Create a span, assign IDs from the thread's stack, and push it;
        returns ``(span, stack)``."""
        stack: List[Span] = getattr(self._local, "stack", None) or []
        self._local.stack = stack
        sp = Span(name=name, attributes=attributes, start=perf_counter())
        sp.span_id = new_id()
        if stack:
            sp.trace_id = stack[-1].trace_id
            sp.parent_id = stack[-1].span_id
        else:
            sp.trace_id = new_id()
        stack.append(sp)
        return sp, stack

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Optional[Span]]:
        """Time a region; nests under the thread's innermost open span."""
        if not self._enabled:
            yield None
            return
        sp, stack = self._open(name, attributes)
        try:
            yield sp
        finally:
            sp.duration = perf_counter() - sp.start
            stack.pop()
            if stack:
                stack[-1].children.append(sp)
            else:
                self._record_root(sp)

    @contextmanager
    def capture(
        self,
        name: str,
        trace_id: str = "",
        parent_id: str = "",
        **attributes: object,
    ) -> Iterator[Optional[Span]]:
        """Like :meth:`span`, but the finished span is *detached*: it is
        neither appended to an enclosing span nor recorded as a root.

        The caller owns the yielded span — worker shards use this to
        record a subtree that ships back to the parent process instead
        of polluting the worker's own root buffer.  ``trace_id`` /
        ``parent_id`` seed the IDs from a propagated
        :class:`~repro.telemetry.context.TraceContext`.
        """
        if not self._enabled:
            yield None
            return
        sp, stack = self._open(name, attributes)
        if trace_id:
            sp.trace_id = trace_id
        if parent_id:
            sp.parent_id = parent_id
        try:
            yield sp
        finally:
            sp.duration = perf_counter() - sp.start
            stack.pop()

    def current_span(self) -> Optional[Span]:
        """This thread's innermost open span, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _record_root(self, sp: Span) -> None:
        size = sp.subtree_size()
        with self._lock:
            if self._stored + size > self._max_spans:
                self.dropped += size
                return
            self._roots.append(sp)
            self._stored += size
            while len(self._roots) > self._max_roots:
                evicted = self._roots.popleft()
                self._stored -= evicted.subtree_size()

    # ------------------------------------------------------------------
    def roots(self) -> List[Span]:
        """Finished root spans currently buffered (oldest first)."""
        with self._lock:
            return list(self._roots)

    @property
    def span_count(self) -> int:
        """Spans currently held in the buffer (all depths)."""
        with self._lock:
            return self._stored

    def clear(self) -> None:
        """Empty the buffer and reset the drop counter."""
        with self._lock:
            self._roots.clear()
            self._stored = 0
            self.dropped = 0


def format_span_tree(roots: Sequence[Span], indent: str = "  ") -> str:
    """ASCII rendering of finished span trees, one line per span."""
    if not roots:
        return "(no spans recorded)"
    lines: List[str] = []

    def walk(sp: Span, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sp.attributes.items())
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{indent * depth}{sp.name}  {sp.duration_ms:.3f} ms{suffix}")
        for child in sp.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


_DEFAULT_TRACER = Tracer()


def default_tracer() -> Tracer:
    """The process-wide shared tracer (disabled until explicitly enabled)."""
    return _DEFAULT_TRACER


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one."""
    global _DEFAULT_TRACER
    if not isinstance(tracer, Tracer):
        raise TypeError(f"expected a Tracer, got {type(tracer).__name__}")
    previous = _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer
    return previous
