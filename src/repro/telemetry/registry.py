"""Thread-safe metrics registry: Counter / Gauge / Histogram with labels.

The runtime's hot paths (batch kernels, streaming pipelines, the compile
cache, DREAM executed mode) publish into one process-wide
:class:`MetricsRegistry` so a single exporter pass can answer "what has
this process done" — the software counterpart of the cycle ledgers the
PiCoGA model keeps per array.  Design constraints, in order:

* **zero dependencies** — stdlib only, importable from anywhere in the
  package without cycles;
* **near-zero overhead when disabled** — every mutating call checks one
  boolean attribute and returns, so instrumented code pays a branch, not
  a lock, when telemetry is off;
* **bounded label cardinality** — each metric family caps its distinct
  label sets (default :data:`MAX_LABEL_SETS`); once full, unseen label
  sets collapse into a shared ``__overflow__`` child and are counted in
  ``dropped_label_sets`` rather than growing memory without bound.

Naming follows Prometheus conventions (counters end in ``_total``,
histograms get ``_bucket``/``_sum``/``_count`` series at export time) so
:func:`repro.telemetry.export.render_prometheus` is a direct rendering.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

MAX_LABEL_SETS = 64
OVERFLOW_LABEL = "__overflow__"

#: Latency-flavored default bucket upper bounds, in seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _Child:
    """One (metric family, label set) time series."""

    __slots__ = ("_registry", "_lock")

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._lock = threading.Lock()


class Counter(_Child):
    """Monotonically increasing count."""

    __slots__ = ("_value",)
    kind = "counter"

    def __init__(self, registry: "MetricsRegistry"):
        super().__init__(registry)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry._enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Child):
    """A value that can go up and down (open streams, buffered bits)."""

    __slots__ = ("_value",)
    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry"):
        super().__init__(registry)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry._enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Child):
    """Fixed-bucket distribution with Prometheus ``le`` edge semantics.

    ``observe(v)`` lands in the first bucket whose upper bound is ``>= v``
    (a value exactly on an edge belongs to that edge's bucket); values
    above the last edge land in the implicit ``+Inf`` bucket.
    """

    __slots__ = ("_edges", "_counts", "_sum", "_count")
    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", edges: Sequence[float]):
        super().__init__(registry)
        self._edges = tuple(float(e) for e in edges)
        if list(self._edges) != sorted(set(self._edges)):
            raise ValueError("histogram bucket edges must be strictly increasing")
        self._counts = [0] * (len(self._edges) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._registry._enabled:
            return
        idx = bisect_left(self._edges, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def edges(self) -> Tuple[float, ...]:
        return self._edges

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[int]:
        """Raw (non-cumulative) per-bucket counts; last entry is +Inf."""
        with self._lock:
            return list(self._counts)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        with self._lock:
            out, running = [], 0
            for edge, c in zip(self._edges, self._counts):
                running += c
                out.append((edge, running))
            out.append((float("inf"), running + self._counts[-1]))
            return out


_CHILD_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its per-label-set children.

    Label-less families delegate the child API (``inc``/``set``/
    ``observe``/``value``/…) straight to their single default child, so
    ``registry.counter("x_total").inc()`` works without a ``labels()``
    hop.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        max_label_sets: int = MAX_LABEL_SETS,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._registry = registry
        self._buckets = tuple(float(b) for b in buckets) if buckets is not None else None
        if self._buckets is not None and list(self._buckets) != sorted(set(self._buckets)):
            raise ValueError("histogram bucket edges must be strictly increasing")
        self._max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._children: "Dict[Tuple[str, ...], _Child]" = {}
        self.dropped_label_sets = 0

    # ------------------------------------------------------------------
    def _new_child(self) -> _Child:
        if self.kind == "histogram":
            return Histogram(self._registry, self._buckets or DEFAULT_BUCKETS)
        return _CHILD_KINDS[self.kind](self._registry)

    def labels(self, **labels: str):
        """The child for one label set, created (or capped) on first use."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= max(self._max_label_sets, 1) and not all(
                    v == OVERFLOW_LABEL for v in key
                ):
                    self.dropped_label_sets += 1
                    key = (OVERFLOW_LABEL,) * len(self.label_names)
                    child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._new_child()
            return child

    def samples(self) -> List[Tuple[Dict[str, str], _Child]]:
        """``(label dict, child)`` pairs, insertion order."""
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.label_names, key)), child) for key, child in items]

    # Delegate the child API for label-less families.
    def __getattr__(self, item: str):
        if not self.label_names:
            return getattr(self.labels(), item)
        raise AttributeError(
            f"{self.name!r} is labeled by {self.label_names}; call .labels(...) first"
        )


class MetricsRegistry:
    """Process-wide, thread-safe collection of metric families."""

    def __init__(self, enabled: bool = True, max_label_sets: int = MAX_LABEL_SETS):
        self._enabled = enabled
        self._max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._families: "Dict[str, MetricFamily]" = {}

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def set_enabled(self, flag: bool) -> None:
        self._enabled = bool(flag)

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}"
                        f"{family.label_names}, requested {kind}{tuple(labels)}"
                    )
                return family
            family = MetricFamily(
                self, name, kind, help=help, label_names=labels,
                buckets=buckets, max_label_sets=self._max_label_sets,
            )
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family (and its values).  Instrument sites holding a
        family reference keep working: re-registration under the same name
        recreates it, but references obtained *before* the reset publish
        into orphaned families — prefer resetting only in tests/CLI."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """JSON-able dump of every family, sufficient to rebuild exactly."""
        out: Dict[str, dict] = {}
        for family in self.families():
            samples = []
            for label_dict, child in family.samples():
                if family.kind == "histogram":
                    samples.append({
                        "labels": label_dict,
                        "count": child.count,
                        "sum": child.total,
                        "edges": list(child.edges),
                        "bucket_counts": child.bucket_counts(),
                    })
                else:
                    samples.append({"labels": label_dict, "value": child.value})
            entry = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "samples": samples,
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family._buckets or DEFAULT_BUCKETS)
            out[family.name] = entry
        return out

    def restore(self, snapshot: Mapping[str, dict]) -> None:
        """Merge a :meth:`snapshot` back in (used by the JSONL importer)."""
        for name, fam in snapshot.items():
            kind, labels = fam["kind"], fam.get("labels", [])
            help_text = fam.get("help", "")
            if kind == "histogram":
                family = self.histogram(
                    name, help_text, labels,
                    buckets=fam.get("buckets", DEFAULT_BUCKETS),
                )
            elif kind == "counter":
                family = self.counter(name, help_text, labels)
            else:
                family = self.gauge(name, help_text, labels)
            for sample in fam.get("samples", []):
                child = family.labels(**sample.get("labels", {}))
                if kind == "histogram":
                    with child._lock:
                        child._counts = list(sample["bucket_counts"])
                        child._sum = float(sample["sum"])
                        child._count = int(sample["count"])
                else:
                    with child._lock:
                        child._value = float(sample["value"])


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide shared registry all built-in instrumentation uses."""
    return _DEFAULT_REGISTRY
