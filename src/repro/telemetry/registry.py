"""Thread-safe metrics registry: Counter / Gauge / Histogram with labels.

The runtime's hot paths (batch kernels, streaming pipelines, the compile
cache, DREAM executed mode) publish into one process-wide
:class:`MetricsRegistry` so a single exporter pass can answer "what has
this process done" — the software counterpart of the cycle ledgers the
PiCoGA model keeps per array.  Design constraints, in order:

* **zero dependencies** — stdlib only, importable from anywhere in the
  package without cycles;
* **near-zero overhead when disabled** — every mutating call checks one
  boolean attribute and returns, so instrumented code pays a branch, not
  a lock, when telemetry is off;
* **bounded label cardinality** — each metric family caps its distinct
  label sets (default :data:`MAX_LABEL_SETS`); once full, unseen label
  sets collapse into a shared ``__overflow__`` child and are counted in
  ``dropped_label_sets`` rather than growing memory without bound.

Since the distributed-telemetry rework, a family's *declared* label
names are a floor, not a ceiling: :meth:`MetricFamily.sample` accepts
label sets carrying extra dimensions (the ``worker=<id>`` label the
cross-process merge adds), Prometheus-style, and
:meth:`MetricsRegistry.merge_snapshot` folds a worker's delta snapshot
into the parent additively.  :func:`snapshot_delta` produces exactly
those deltas on the worker side.

Naming follows Prometheus conventions (counters end in ``_total``,
histograms get ``_bucket``/``_sum``/``_count`` series at export time) so
:func:`repro.telemetry.export.render_prometheus` is a direct rendering.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

MAX_LABEL_SETS = 64
OVERFLOW_LABEL = "__overflow__"

#: Latency-flavored default bucket upper bounds, in seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: A child key: ``(label name, label value)`` pairs, declared names first.
_ChildKey = Tuple[Tuple[str, str], ...]


class _Child:
    """One (metric family, label set) time series."""

    __slots__ = ("_registry", "_lock")

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._lock = threading.Lock()


class Counter(_Child):
    """Monotonically increasing count."""

    __slots__ = ("_value",)
    kind = "counter"

    def __init__(self, registry: "MetricsRegistry"):
        super().__init__(registry)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1); no-op while the registry is off."""
        if not self._registry._enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value


class Gauge(_Child):
    """A value that can go up and down (open streams, buffered bits)."""

    __slots__ = ("_value",)
    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry"):
        super().__init__(registry)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value; no-op while the registry is off."""
        if not self._registry._enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative); no-op while the registry is off."""
        if not self._registry._enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``; no-op while the registry is off."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current gauge value."""
        with self._lock:
            return self._value


class Histogram(_Child):
    """Fixed-bucket distribution with Prometheus ``le`` edge semantics.

    ``observe(v)`` lands in the first bucket whose upper bound is ``>= v``
    (a value exactly on an edge belongs to that edge's bucket); values
    above the last edge land in the implicit ``+Inf`` bucket.
    """

    __slots__ = ("_edges", "_counts", "_sum", "_count")
    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", edges: Sequence[float]):
        super().__init__(registry)
        self._edges = tuple(float(e) for e in edges)
        if list(self._edges) != sorted(set(self._edges)):
            raise ValueError("histogram bucket edges must be strictly increasing")
        self._counts = [0] * (len(self._edges) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation; no-op while the registry is off."""
        if not self._registry._enabled:
            return
        idx = bisect_left(self._edges, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def edges(self) -> Tuple[float, ...]:
        """Bucket upper bounds (excluding the implicit +Inf)."""
        return self._edges

    @property
    def count(self) -> int:
        """Total observations recorded."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[int]:
        """Raw (non-cumulative) per-bucket counts; last entry is +Inf."""
        with self._lock:
            return list(self._counts)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        with self._lock:
            out, running = [], 0
            for edge, c in zip(self._edges, self._counts):
                running += c
                out.append((edge, running))
            out.append((float("inf"), running + self._counts[-1]))
            return out


_CHILD_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its per-label-set children.

    Label-less families delegate the child API (``inc``/``set``/
    ``observe``/``value``/…) straight to their single default child, so
    ``registry.counter("x_total").inc()`` works without a ``labels()``
    hop.  Children are keyed by their full ``(name, value)`` label items,
    so one family can hold samples whose label sets extend the declared
    names — how worker-merged series gain a ``worker`` dimension without
    re-registering the family.
    """

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        max_label_sets: int = MAX_LABEL_SETS,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._registry = registry
        self._buckets = tuple(float(b) for b in buckets) if buckets is not None else None
        if self._buckets is not None and list(self._buckets) != sorted(set(self._buckets)):
            raise ValueError("histogram bucket edges must be strictly increasing")
        self._max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._children: "Dict[_ChildKey, _Child]" = {}
        self.dropped_label_sets = 0

    # ------------------------------------------------------------------
    def _new_child(self) -> _Child:
        if self.kind == "histogram":
            return Histogram(self._registry, self._buckets or DEFAULT_BUCKETS)
        return _CHILD_KINDS[self.kind](self._registry)

    def _child_key(self, labels: Mapping[str, object]) -> _ChildKey:
        """Canonical child key: declared names first, extras sorted after."""
        declared = [(n, str(labels[n])) for n in self.label_names if n in labels]
        extras = sorted(
            (n, str(v)) for n, v in labels.items() if n not in self.label_names
        )
        return tuple(declared + extras)

    def _locate(self, key: _ChildKey) -> _Child:
        """The child for a key, created (or collapsed to overflow) on miss."""
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= max(self._max_label_sets, 1) and not all(
                    v == OVERFLOW_LABEL for _, v in key
                ):
                    self.dropped_label_sets += 1
                    key = tuple((n, OVERFLOW_LABEL) for n, _ in key)
                    child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._new_child()
            return child

    def labels(self, **labels: str):
        """The child for one declared label set (validated, created lazily)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, got {tuple(labels)}"
            )
        return self._locate(self._child_key(labels))

    def sample(self, labels: Mapping[str, object]):
        """The child for an arbitrary label mapping (lenient variant).

        Unlike :meth:`labels`, the mapping may carry dimensions beyond
        the declared ``label_names`` — the snapshot importer and the
        cross-worker merge use this to land ``worker=<id>``-extended
        series in the same family.  Missing declared names are allowed
        too (the sample simply omits them).
        """
        return self._locate(self._child_key(labels))

    def samples(self) -> List[Tuple[Dict[str, str], _Child]]:
        """``(label dict, child)`` pairs, insertion order."""
        with self._lock:
            items = list(self._children.items())
        return [(dict(key), child) for key, child in items]

    # Delegate the child API for label-less families.
    def __getattr__(self, item: str):
        if not self.label_names:
            return getattr(self.labels(), item)
        raise AttributeError(
            f"{self.name!r} is labeled by {self.label_names}; call .labels(...) first"
        )


class MetricsRegistry:
    """Process-wide, thread-safe collection of metric families."""

    def __init__(self, enabled: bool = True, max_label_sets: int = MAX_LABEL_SETS):
        self._enabled = enabled
        self._max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._families: "Dict[str, MetricFamily]" = {}

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether mutating calls record anything."""
        return self._enabled

    def enable(self) -> None:
        """Turn recording on."""
        self._enabled = True

    def disable(self) -> None:
        """Turn recording off (instrumented code pays one branch)."""
        self._enabled = False

    def set_enabled(self, flag: bool) -> None:
        """Set the recording switch explicitly."""
        self._enabled = bool(flag)

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}"
                        f"{family.label_names}, requested {kind}{tuple(labels)}"
                    )
                return family
            family = MetricFamily(
                self, name, kind, help=help, label_names=labels,
                buckets=buckets, max_label_sets=self._max_label_sets,
            )
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        """Get-or-register a counter family."""
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        """Get-or-register a gauge family."""
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Get-or-register a histogram family with the given bucket edges."""
        return self._family(name, "histogram", help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family (and its values).  Instrument sites holding a
        family reference keep working: re-registration under the same name
        recreates it, but references obtained *before* the reset publish
        into orphaned families — prefer resetting only in tests/CLI."""
        with self._lock:
            self._families.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """JSON-able dump of every family, sufficient to rebuild exactly."""
        out: Dict[str, dict] = {}
        for family in self.families():
            samples = []
            for label_dict, child in family.samples():
                if family.kind == "histogram":
                    samples.append({
                        "labels": label_dict,
                        "count": child.count,
                        "sum": child.total,
                        "edges": list(child.edges),
                        "bucket_counts": child.bucket_counts(),
                    })
                else:
                    samples.append({"labels": label_dict, "value": child.value})
            entry = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "samples": samples,
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family._buckets or DEFAULT_BUCKETS)
            out[family.name] = entry
        return out

    def _restore_family(self, name: str, fam: Mapping) -> MetricFamily:
        """Get-or-register the family a snapshot entry describes."""
        kind, labels = fam["kind"], fam.get("labels", [])
        help_text = fam.get("help", "")
        if kind == "histogram":
            return self.histogram(
                name, help_text, labels, buckets=fam.get("buckets", DEFAULT_BUCKETS)
            )
        if kind == "counter":
            return self.counter(name, help_text, labels)
        return self.gauge(name, help_text, labels)

    def restore(self, snapshot: Mapping[str, dict]) -> None:
        """Load a :meth:`snapshot` back in, *setting* sample values (the
        JSONL importer's path — the target samples are assumed fresh)."""
        for name, fam in snapshot.items():
            family = self._restore_family(name, fam)
            for sample in fam.get("samples", []):
                child = family.sample(sample.get("labels", {}))
                if family.kind == "histogram":
                    with child._lock:
                        child._counts = list(sample["bucket_counts"])
                        child._sum = float(sample["sum"])
                        child._count = int(sample["count"])
                else:
                    with child._lock:
                        child._value = float(sample["value"])

    def merge_snapshot(
        self,
        snapshot: Mapping[str, dict],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold a snapshot in *additively*, tagging every sample with
        ``extra_labels`` (the cross-worker merge: counters and histogram
        buckets add, gauges add their shipped delta).

        Unlike normal instrument calls this bypasses the enabled gate —
        the caller already decided the delta should land (it captured it
        in a worker because telemetry was on when the shard dispatched).
        """
        extra = dict(extra_labels or {})
        for name, fam in snapshot.items():
            family = self._restore_family(name, fam)
            for sample in fam.get("samples", []):
                merged = dict(sample.get("labels", {}))
                merged.update(extra)
                child = family.sample(merged)
                if family.kind == "histogram":
                    counts = list(sample["bucket_counts"])
                    with child._lock:
                        if len(child._counts) != len(counts):
                            raise ValueError(
                                f"histogram {name!r} bucket shape mismatch: "
                                f"{len(child._counts)} vs {len(counts)}"
                            )
                        child._counts = [
                            a + b for a, b in zip(child._counts, counts)
                        ]
                        child._sum += float(sample["sum"])
                        child._count += int(sample["count"])
                else:
                    with child._lock:
                        child._value += float(sample["value"])


def snapshot_delta(
    before: Mapping[str, dict], after: Mapping[str, dict]
) -> Dict[str, dict]:
    """The additive difference between two :meth:`MetricsRegistry.snapshot`
    dumps — what a worker publishes back after one shard task.

    Only families/samples that changed appear; counter and histogram
    deltas are clamped at zero (a reset between snapshots degrades to
    "everything since the reset" rather than going negative).  The result
    is shaped exactly like a snapshot, so it feeds
    :meth:`MetricsRegistry.merge_snapshot` directly.
    """
    out: Dict[str, dict] = {}
    for name, fam in after.items():
        base = before.get(name, {})
        base_samples = {
            frozenset((k, str(v)) for k, v in s.get("labels", {}).items()): s
            for s in base.get("samples", [])
        }
        samples = []
        for sample in fam.get("samples", []):
            key = frozenset(
                (k, str(v)) for k, v in sample.get("labels", {}).items()
            )
            prev = base_samples.get(key)
            if fam["kind"] == "histogram":
                prev_counts = prev["bucket_counts"] if prev else [0] * len(
                    sample["bucket_counts"]
                )
                counts = [
                    max(0, a - b)
                    for a, b in zip(sample["bucket_counts"], prev_counts)
                ]
                count = max(0, sample["count"] - (prev["count"] if prev else 0))
                if count == 0 and not any(counts):
                    continue
                samples.append({
                    "labels": dict(sample.get("labels", {})),
                    "count": count,
                    "sum": sample["sum"] - (prev["sum"] if prev else 0.0),
                    "edges": list(sample["edges"]),
                    "bucket_counts": counts,
                })
            else:
                delta = sample["value"] - (prev["value"] if prev else 0.0)
                if fam["kind"] == "counter":
                    delta = max(0.0, delta)
                if delta == 0.0:
                    continue
                samples.append({
                    "labels": dict(sample.get("labels", {})),
                    "value": delta,
                })
        if samples:
            entry = {k: v for k, v in fam.items() if k != "samples"}
            entry["samples"] = samples
            out[name] = entry
    return out


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide shared registry all built-in instrumentation uses."""
    return _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Instrument sites resolve the default registry lazily (via
    :func:`bind_families`), so a swap takes effect immediately — tests
    use this to observe a run in a clean registry, and embedders can
    route the library's metrics into their own collection.
    """
    global _DEFAULT_REGISTRY
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(f"expected a MetricsRegistry, got {type(registry).__name__}")
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


def bind_families(builder: Callable[[MetricsRegistry], object]):
    """Lazily bind a module's metric families to the *current* default
    registry.

    ``builder(registry)`` constructs the module's family handles (any
    container).  The returned zero-arg callable yields that container,
    rebuilding it iff :func:`default_registry` now returns a different
    object than last time — so a module pays one identity check per
    call instead of snapshotting the registry at import time (the bug
    class where :func:`set_default_registry` was silently ignored).
    """
    cell: Dict[str, object] = {"registry": None, "families": None}

    def resolve():
        registry = default_registry()
        if cell["registry"] is not registry:
            cell["families"] = builder(registry)
            cell["registry"] = registry
        return cell["families"]

    return resolve
