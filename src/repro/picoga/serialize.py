"""Serialization of compiled operations ("configuration bitstreams").

A deployed DREAM system stores compiled PGAOPs as configuration data and
streams them into the context cache at run time.  This module provides the
software analogue: a compiled :class:`PicogaOperation` round-trips through
a plain-JSON-compatible dict, so mappings can be compiled once (the slow
matrix + CSE step) and reloaded instantly — the library's "firmware image"
format, used by the multi-standard-modem example.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.picoga.architecture import DREAM_PICOGA, PicogaArchitecture
from repro.picoga.cell import Cell, CellKind, Net, NetKind
from repro.picoga.op import PicogaOperation

FORMAT_VERSION = 1

_KIND_CODES = {NetKind.INPUT: "i", NetKind.STATE: "s", NetKind.CELL: "c"}
_KIND_FROM_CODE = {v: k for k, v in _KIND_CODES.items()}


def _net_to_token(net: Net) -> str:
    return f"{_KIND_CODES[net.kind]}{net.index}"


def _net_from_token(token: str) -> Net:
    kind = _KIND_FROM_CODE.get(token[:1])
    if kind is None:
        raise ValueError(f"bad net token {token!r}")
    return Net(kind, int(token[1:]))


def operation_to_dict(op: PicogaOperation) -> Dict:
    """A JSON-compatible description of one compiled operation."""
    cells: List[Dict] = []
    for cell in op.cells:
        entry: Dict = {
            "k": "x" if cell.kind is CellKind.XOR else "l",
            "in": [_net_to_token(n) for n in cell.inputs],
        }
        if cell.truth_table is not None:
            entry["tt"] = cell.truth_table
        cells.append(entry)
    return {
        "version": FORMAT_VERSION,
        "name": op.name,
        "n_inputs": op.n_inputs,
        "n_state": op.n_state,
        "cells": cells,
        "outputs": [_net_to_token(n) for n in op.outputs],
        "next_state": [_net_to_token(n) for n in op.next_state],
    }


def operation_from_dict(
    data: Dict, arch: PicogaArchitecture = DREAM_PICOGA
) -> PicogaOperation:
    """Rebuild (and revalidate) an operation from its dict form."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')!r}")
    cells = []
    for i, entry in enumerate(data["cells"]):
        kind = CellKind.XOR if entry["k"] == "x" else CellKind.LUT
        cells.append(
            Cell(
                index=i,
                kind=kind,
                inputs=tuple(_net_from_token(t) for t in entry["in"]),
                truth_table=entry.get("tt"),
            )
        )
    return PicogaOperation(
        name=data["name"],
        n_inputs=data["n_inputs"],
        n_state=data["n_state"],
        cells=cells,
        outputs=[_net_from_token(t) for t in data["outputs"]],
        next_state=[_net_from_token(t) for t in data["next_state"]],
        arch=arch,
    )


def dumps(op: PicogaOperation) -> str:
    """Operation -> JSON text."""
    return json.dumps(operation_to_dict(op), separators=(",", ":"))


def loads(text: str, arch: PicogaArchitecture = DREAM_PICOGA) -> PicogaOperation:
    """JSON text -> validated operation."""
    return operation_from_dict(json.loads(text), arch=arch)
