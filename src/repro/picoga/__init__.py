"""Functional + cycle-level simulator of the PiCoGA pipelined gate array.

The paper's evaluation platform is proprietary silicon; this package models
it at the level its results depend on (see DESIGN.md §2):

* :mod:`repro.picoga.architecture` — the PiCoGA-III parameters (24×16
  cells, 10-input XOR per cell, 12×32/4×32-bit I/O, 4 contexts, 200 MHz);
* :mod:`repro.picoga.cell` / :mod:`repro.picoga.op` — netlist primitives
  and compiled PGAOPs with level/loop (initiation-interval) analysis;
* :mod:`repro.picoga.config` — the configuration cache (2-cycle switch);
* :mod:`repro.picoga.array` — the executor with per-cause cycle ledger.
"""

from repro.picoga.activity import ActivityMonitor, ActivityReport, measure_crc_activity
from repro.picoga.architecture import DREAM_PICOGA, PicogaArchitecture
from repro.picoga.array import CycleLedger, PicogaArray
from repro.picoga.cell import Cell, CellKind, Net, NetKind, lut_cell, xor_cell
from repro.picoga.config import BUS_LOAD_CYCLES, ConfigCache
from repro.picoga.op import OperationStats, PicogaOperation
from repro.picoga.report import RowOccupancy, config_size_bytes, describe, placement, utilization
from repro.picoga.serialize import dumps as op_dumps
from repro.picoga.serialize import loads as op_loads
from repro.picoga.serialize import operation_from_dict, operation_to_dict
from repro.picoga.routing import RoutingReport, estimate_routing
from repro.picoga.trace import PipelineTrace, trace_burst
from repro.picoga.vcd import VcdWriter, dump_burst_vcd

__all__ = [
    "ActivityMonitor",
    "ActivityReport",
    "BUS_LOAD_CYCLES",
    "Cell",
    "CellKind",
    "ConfigCache",
    "CycleLedger",
    "DREAM_PICOGA",
    "Net",
    "NetKind",
    "OperationStats",
    "PicogaArchitecture",
    "PicogaArray",
    "PicogaOperation",
    "RowOccupancy",
    "config_size_bytes",
    "describe",
    "lut_cell",
    "measure_crc_activity",
    "op_dumps",
    "op_loads",
    "operation_from_dict",
    "operation_to_dict",
    "PipelineTrace",
    "RoutingReport",
    "estimate_routing",
    "placement",
    "trace_burst",
    "utilization",
    "VcdWriter",
    "dump_burst_vcd",
    "xor_cell",
]
