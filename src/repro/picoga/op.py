"""Compiled PiCoGA operations (PGAOPs).

A :class:`PicogaOperation` is the unit the RISC core issues to the array:
a registered dataflow graph of RLC cells with

* ``n_inputs`` primary-input bits (from the 12×32-bit input ports),
* ``n_state`` loop-carried state bits (the LFSR register, block to block),
* ``outputs`` — nets driven onto the output ports, and
* ``next_state`` — nets that overwrite the state registers each block.

The class performs the two analyses the paper's design flow hinges on:

* **levelization** — cells are grouped into dataflow levels; one level maps
  to one or more physical rows (16 cells each), and the row count is the
  pipeline latency;
* **initiation-interval analysis** — the subgraph that both depends on and
  feeds the state registers is the *feedback loop*; its depth in rows
  bounds how often a new block can be issued.  Derby-mapped CRCs have a
  single-row loop (II = 1); direct Pei-style mappings have XOR trees in the
  loop and a correspondingly larger II.

Functional evaluation executes the netlist cell by cell, which is how the
test-suite co-simulates mapped CRCs against the software engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Sequence, Set, Tuple

from repro.picoga.architecture import DREAM_PICOGA, PicogaArchitecture
from repro.picoga.cell import Cell, CellKind, Net, NetKind


@dataclass(frozen=True)
class OperationStats:
    """Resource/timing summary of one compiled operation."""

    name: str
    n_cells: int
    n_levels: int
    n_rows: int
    loop_levels: int
    loop_rows: int
    initiation_interval: int
    latency_cycles: int
    n_inputs: int
    n_state: int
    n_outputs: int
    max_fanin: int


class PicogaOperation:
    """One PGAOP: validated netlist + level/loop analyses + evaluation."""

    def __init__(
        self,
        name: str,
        n_inputs: int,
        n_state: int,
        cells: Sequence[Cell],
        outputs: Sequence[Net],
        next_state: Sequence[Net],
        arch: PicogaArchitecture = DREAM_PICOGA,
    ):
        self.name = name
        self.arch = arch
        self._n_inputs = n_inputs
        self._n_state = n_state
        self._cells = list(cells)
        self._outputs = list(outputs)
        self._next_state = list(next_state)
        if n_inputs < 0 or n_state < 0:
            raise ValueError("input/state counts must be >= 0")
        if len(next_state) not in (0, n_state):
            raise ValueError("next_state must be empty or one net per state bit")
        self._validate_netlist()
        self._levels = self._levelize()
        self._loop_cells = self._find_loop_cells()
        self._validate_resources()

    # ------------------------------------------------------------------
    # Validation and analysis
    # ------------------------------------------------------------------
    def _check_net(self, net: Net, max_cell: int) -> None:
        if net.kind is NetKind.INPUT:
            if net.index >= self._n_inputs:
                raise ValueError(f"{net} out of range ({self._n_inputs} inputs)")
        elif net.kind is NetKind.STATE:
            if net.index >= self._n_state:
                raise ValueError(f"{net} out of range ({self._n_state} state bits)")
        else:
            if net.index >= max_cell:
                raise ValueError(f"{net} references cell {net.index} before definition")

    def _validate_netlist(self) -> None:
        for i, cell in enumerate(self._cells):
            if cell.index != i:
                raise ValueError(f"cell {i} carries index {cell.index}; must be topological")
            max_allowed = cell.fanin
            limit = self.arch.xor_fanin if cell.kind is CellKind.XOR else self.arch.lut_inputs
            if max_allowed > limit:
                raise ValueError(
                    f"cell {i} fan-in {cell.fanin} exceeds {cell.kind.value} limit {limit}"
                )
            for net in cell.inputs:
                self._check_net(net, i)
        n = len(self._cells)
        for net in self._outputs:
            self._check_net(net, n)
        for net in self._next_state:
            self._check_net(net, n)

    def _levelize(self) -> List[int]:
        """ASAP dataflow level of each cell (level 0 = reads only I/O/state)."""
        levels: List[int] = []
        for cell in self._cells:
            lvl = 0
            for net in cell.inputs:
                if net.kind is NetKind.CELL:
                    lvl = max(lvl, levels[net.index] + 1)
            levels.append(lvl)
        return levels

    def _find_loop_cells(self) -> Set[int]:
        """Cells on a state-to-state path (depend on STATE, feed next_state)."""
        if not self._next_state:
            return set()
        n = len(self._cells)
        depends_on_state = [False] * n
        for i, cell in enumerate(self._cells):
            for net in cell.inputs:
                if net.kind is NetKind.STATE or (
                    net.kind is NetKind.CELL and depends_on_state[net.index]
                ):
                    depends_on_state[i] = True
                    break
        feeds_state = [False] * n
        frontier = [net.index for net in self._next_state if net.kind is NetKind.CELL]
        for i in frontier:
            feeds_state[i] = True
        for i in range(n - 1, -1, -1):
            if not feeds_state[i]:
                continue
            for net in self._cells[i].inputs:
                if net.kind is NetKind.CELL:
                    feeds_state[net.index] = True
        return {i for i in range(n) if depends_on_state[i] and feeds_state[i]}

    def _rows_for(self, cell_indices: Sequence[int]) -> int:
        """Physical rows needed by a set of cells, level by level."""
        per_level: Dict[int, int] = {}
        for i in cell_indices:
            per_level[self._levels[i]] = per_level.get(self._levels[i], 0) + 1
        return sum(ceil(count / self.arch.cells_per_row) for count in per_level.values())

    def _validate_resources(self) -> None:
        if self._n_inputs > self.arch.input_bits:
            raise ValueError(
                f"{self._n_inputs} input bits exceed the {self.arch.input_bits}-bit ports"
            )
        if len(self._outputs) > self.arch.output_bits:
            raise ValueError(
                f"{len(self._outputs)} output bits exceed the {self.arch.output_bits}-bit ports"
            )
        rows = self.n_rows
        if rows > self.arch.rows:
            raise ValueError(f"operation needs {rows} rows; the array has {self.arch.rows}")

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def cells(self) -> List[Cell]:
        return list(self._cells)

    @property
    def outputs(self) -> List[Net]:
        return list(self._outputs)

    @property
    def next_state(self) -> List[Net]:
        return list(self._next_state)

    @property
    def n_inputs(self) -> int:
        return self._n_inputs

    @property
    def n_state(self) -> int:
        return self._n_state

    @property
    def n_cells(self) -> int:
        return len(self._cells)

    @property
    def levels(self) -> List[int]:
        """ASAP dataflow level of each cell, by cell index."""
        return list(self._levels)

    @property
    def n_levels(self) -> int:
        return (max(self._levels) + 1) if self._levels else 0

    @property
    def n_rows(self) -> int:
        """Pipeline depth in physical rows (the operation latency)."""
        return self._rows_for(range(len(self._cells))) if self._cells else 0

    @property
    def loop_cells(self) -> Set[int]:
        return set(self._loop_cells)

    @property
    def loop_levels(self) -> int:
        if not self._loop_cells:
            return 0
        lvls = {self._levels[i] for i in self._loop_cells}
        return max(lvls) - min(lvls) + 1

    @property
    def loop_rows(self) -> int:
        return self._rows_for(sorted(self._loop_cells)) if self._loop_cells else 0

    @property
    def loop_depth(self) -> int:
        """Longest state-to-state path, in cells.

        This is the retiming bound on the initiation interval: every
        feedback cycle through the state registers spans one block, so the
        maximum number of cells on any STATE-leaf -> next_state path limits
        how often blocks can be issued.  Stream-side logic (pure functions
        of the block inputs) never counts — it pipelines ahead of the loop.
        """
        if not self._loop_cells:
            return 0
        depth: Dict[int, int] = {}
        for i in sorted(self._loop_cells):
            d = 1
            for net in self._cells[i].inputs:
                if net.kind is NetKind.CELL and net.index in self._loop_cells:
                    d = max(d, depth[net.index] + 1)
            depth[i] = d
        terminal = [
            depth[n.index]
            for n in self._next_state
            if n.kind is NetKind.CELL and n.index in self._loop_cells
        ]
        return max(terminal, default=0)

    @property
    def initiation_interval(self) -> int:
        """Cycles between successive blocks (1 when every feedback path
        fits a single cell, as in Derby-mapped updates)."""
        return max(1, self.loop_depth)

    @property
    def latency_cycles(self) -> int:
        """Input-to-output latency of one block through the pipeline."""
        return max(1, self.n_rows)

    def stats(self) -> OperationStats:
        return OperationStats(
            name=self.name,
            n_cells=self.n_cells,
            n_levels=self.n_levels,
            n_rows=self.n_rows,
            loop_levels=self.loop_levels,
            loop_rows=self.loop_rows,
            initiation_interval=self.initiation_interval,
            latency_cycles=self.latency_cycles,
            n_inputs=self._n_inputs,
            n_state=self._n_state,
            n_outputs=len(self._outputs),
            max_fanin=max((c.fanin for c in self._cells), default=0),
        )

    # ------------------------------------------------------------------
    # Functional simulation
    # ------------------------------------------------------------------
    def evaluate(
        self, state: Sequence[int], inputs: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        """Run one block: returns ``(output_bits, next_state_bits)``."""
        if len(state) != self._n_state:
            raise ValueError(f"expected {self._n_state} state bits, got {len(state)}")
        if len(inputs) != self._n_inputs:
            raise ValueError(f"expected {self._n_inputs} input bits, got {len(inputs)}")
        cell_values: List[int] = []

        def value(net: Net) -> int:
            if net.kind is NetKind.INPUT:
                return inputs[net.index] & 1
            if net.kind is NetKind.STATE:
                return state[net.index] & 1
            return cell_values[net.index]

        for cell in self._cells:
            cell_values.append(cell.evaluate([value(n) for n in cell.inputs]))
        outs = [value(n) for n in self._outputs]
        nxt = [value(n) for n in self._next_state]
        return outs, nxt

    def __repr__(self) -> str:
        return (
            f"PicogaOperation({self.name!r}, cells={self.n_cells}, rows={self.n_rows}, "
            f"II={self.initiation_interval})"
        )
