"""Human-readable placement/resource reports for compiled operations.

The paper's §4 walks through resource trade-offs (cells per row, rows per
operation, I/O budget); this module renders a compiled
:class:`PicogaOperation` the way a place-and-route report would — per-row
occupancy, loop highlighting, utilization against the array, and a
configuration-size estimate for the context cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List

from repro.picoga.architecture import PicogaArchitecture
from repro.picoga.cell import CellKind
from repro.picoga.op import PicogaOperation

#: Rough per-cell configuration payload: function select, 10 input routes,
#: output route — modelled as 16 bytes/cell (order-of-magnitude realistic
#: for mid-grain fabrics; used only for relative comparisons).
CONFIG_BYTES_PER_CELL = 16
CONFIG_BYTES_PER_ROW = 32  # pipeline-control words


@dataclass(frozen=True)
class RowOccupancy:
    """One physical row of the placed operation."""

    row: int
    level: int
    cells: int
    loop_cells: int

    @property
    def is_loop_row(self) -> bool:
        return self.loop_cells > 0


def placement(op: PicogaOperation) -> List[RowOccupancy]:
    """Level-ordered greedy placement: levels map to consecutive rows,
    splitting a level when it exceeds the row width."""
    levels = op.levels
    per_level: Dict[int, List[int]] = {}
    for i, _ in enumerate(op.cells):
        per_level.setdefault(levels[i], []).append(i)
    loop = op.loop_cells
    rows: List[RowOccupancy] = []
    row_index = 0
    width = op.arch.cells_per_row
    for level in sorted(per_level):
        members = per_level[level]
        for off in range(0, len(members), width):
            chunk = members[off : off + width]
            rows.append(
                RowOccupancy(
                    row=row_index,
                    level=level,
                    cells=len(chunk),
                    loop_cells=sum(1 for c in chunk if c in loop),
                )
            )
            row_index += 1
    return rows


def utilization(op: PicogaOperation) -> Dict[str, float]:
    """Fractions of the array the operation consumes."""
    arch = op.arch
    return {
        "cells": op.n_cells / arch.total_cells,
        "rows": op.n_rows / arch.rows,
        "inputs": op.n_inputs / arch.input_bits,
        "outputs": len(op.outputs) / arch.output_bits if arch.output_bits else 0.0,
    }


def config_size_bytes(op: PicogaOperation) -> int:
    """Estimated configuration payload for one context layer."""
    return op.n_cells * CONFIG_BYTES_PER_CELL + op.n_rows * CONFIG_BYTES_PER_ROW


def describe(op: PicogaOperation) -> str:
    """A full placement report as text."""
    stats = op.stats()
    lines = [
        f"operation {op.name}",
        f"  inputs={stats.n_inputs} state={stats.n_state} outputs={stats.n_outputs}",
        f"  cells={stats.n_cells} levels={stats.n_levels} rows={stats.n_rows} "
        f"II={stats.initiation_interval} latency={stats.latency_cycles}",
        f"  max fan-in={stats.max_fanin} config~{config_size_bytes(op)} bytes",
        "  row  level  cells  kind",
    ]
    for row in placement(op):
        kind = "LOOP" if row.is_loop_row else "ff"
        bar = "#" * row.cells
        lines.append(f"  {row.row:3d}  {row.level:5d}  {row.cells:5d}  {kind:4s} {bar}")
    util = utilization(op)
    lines.append(
        "  utilization: "
        + " ".join(f"{k}={v:.0%}" for k, v in util.items())
    )
    xor_cells = sum(1 for c in op.cells if c.kind is CellKind.XOR)
    lines.append(f"  cell mix: {xor_cells} XOR, {op.n_cells - xor_cells} LUT")
    return "\n".join(lines)
