"""PiCoGA architecture parameters (paper §3).

The numbers below model the PiCoGA-III instance embedded in the DREAM
adaptive DSP:

* a pipelined matrix of mixed-grain reconfigurable logic cells (RLCs),
  each offering a 4-bit ALU and a 64-bit LUT; the paper's key primitive is
  the **10-input XOR computable in a single cell**;
* each array *row* is the unit of one pipeline stage, sequenced by a
  dedicated programmable pipeline control unit;
* 12 × 32-bit primary input ports and 4 × 32-bit output ports (enough for
  the 128-bit look-ahead CRC: 128 input bits per cycle, 32-bit state out);
* a 4-context configuration cache whose active layer swaps in 2 clock
  cycles;
* a fixed 200 MHz clock and ~11 mm² in ST 90 nm CMOS, with the DREAM-level
  efficiency figures (≈2 GOPS/mm², ≈0.2 GOPS/mW) used by the energy model.

All parameters live in one frozen dataclass so experiments can instantiate
hypothetical arrays (bigger row counts, wider I/O) for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PicogaArchitecture:
    """Static parameters of one PiCoGA instance."""

    rows: int = 24
    cells_per_row: int = 16
    xor_fanin: int = 10  # parity of up to 10 bits in one RLC
    lut_inputs: int = 6  # 64-bit LUT = 2^6 single-bit configurations
    input_ports: int = 12  # 32-bit words
    output_ports: int = 4  # 32-bit words
    port_width: int = 32
    contexts: int = 4
    context_switch_cycles: int = 2
    clock_hz: float = 200e6
    area_mm2: float = 11.0
    technology: str = "ST CMOS 90nm"

    def __post_init__(self):
        for name in ("rows", "cells_per_row", "xor_fanin", "lut_inputs",
                     "input_ports", "output_ports", "port_width", "contexts"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.context_switch_cycles < 0:
            raise ValueError("context_switch_cycles must be >= 0")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")

    # ------------------------------------------------------------------
    @property
    def total_cells(self) -> int:
        return self.rows * self.cells_per_row

    @property
    def input_bits(self) -> int:
        return self.input_ports * self.port_width

    @property
    def output_bits(self) -> int:
        return self.output_ports * self.port_width

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.clock_hz

    def peak_bandwidth_bps(self, bits_per_cycle: int) -> float:
        """Bandwidth at one block per cycle (the paper's kernel numbers)."""
        return bits_per_cycle * self.clock_hz


#: The DREAM-integrated PiCoGA instance used throughout the reproduction.
DREAM_PICOGA = PicogaArchitecture()
