"""VCD (Value Change Dump) export of executed netlists.

Dumps the block-by-block evolution of a :class:`PicogaOperation`'s nets —
inputs, state registers and every cell output — as a standard IEEE 1364
VCD file viewable in GTKWave & co.  One VCD timestep per issued block
(``timescale`` set to the 5 ns PiCoGA clock), which is the natural
granularity of the registered array.

Useful for debugging mapper output and for teaching: the Derby update's
single-level loop versus the direct mapping's deeper feedback is plainly
visible in the waveforms.
"""

from __future__ import annotations

from typing import IO, List, Sequence

from repro.picoga.cell import Net, NetKind
from repro.picoga.op import PicogaOperation

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier codes (base-94)."""
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out = _ID_CHARS[rem] + out
    return out


class VcdWriter:
    """Stream one operation's execution into a VCD file."""

    def __init__(self, op: PicogaOperation, stream: IO[str], clock_ns: int = 5):
        self._op = op
        self._f = stream
        self._clock_ns = clock_ns
        self._time = 0
        self._signals: List[tuple] = []  # (kind, index, vcd_id, label)
        self._last: dict = {}
        self._write_header()

    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        op = self._op
        f = self._f
        f.write("$date repro PiCoGA co-simulation $end\n")
        f.write(f"$timescale {self._clock_ns}ns $end\n")
        f.write(f"$scope module {_sanitize(op.name)} $end\n")
        counter = 0

        def declare(kind: NetKind, index: int, label: str) -> None:
            nonlocal counter
            vid = _identifier(counter)
            counter += 1
            self._signals.append((kind, index, vid, label))
            f.write(f"$var wire 1 {vid} {label} $end\n")

        for j in range(op.n_inputs):
            declare(NetKind.INPUT, j, f"in{j}")
        for i in range(op.n_state):
            declare(NetKind.STATE, i, f"state{i}")
        for c in range(op.n_cells):
            suffix = "_loop" if c in op.loop_cells else ""
            declare(NetKind.CELL, c, f"cell{c}{suffix}")
        f.write("$upscope $end\n$enddefinitions $end\n")

    def _emit(self, values: dict) -> None:
        self._f.write(f"#{self._time}\n")
        for kind, index, vid, _ in self._signals:
            value = values[(kind, index)]
            if self._last.get(vid) != value:
                self._f.write(f"{value}{vid}\n")
                self._last[vid] = value
        self._time += 1

    # ------------------------------------------------------------------
    def record_block(self, state: Sequence[int], inputs: Sequence[int]) -> List[int]:
        """Evaluate one block, dump all net values, return next state."""
        op = self._op
        cell_values: List[int] = []

        def value(net: Net) -> int:
            if net.kind is NetKind.INPUT:
                return inputs[net.index] & 1
            if net.kind is NetKind.STATE:
                return state[net.index] & 1
            return cell_values[net.index]

        for cell in op.cells:
            cell_values.append(cell.evaluate([value(n) for n in cell.inputs]))
        snapshot = {}
        for j in range(op.n_inputs):
            snapshot[(NetKind.INPUT, j)] = inputs[j] & 1
        for i in range(op.n_state):
            snapshot[(NetKind.STATE, i)] = state[i] & 1
        for c in range(op.n_cells):
            snapshot[(NetKind.CELL, c)] = cell_values[c]
        self._emit(snapshot)
        return [value(n) for n in op.next_state]

    def run_burst(self, state: Sequence[int], blocks: Sequence[Sequence[int]]) -> List[int]:
        current = list(state)
        for block in blocks:
            nxt = self.record_block(current, block)
            if nxt:
                current = nxt
        self._f.write(f"#{self._time}\n")
        return current


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def dump_burst_vcd(
    op: PicogaOperation,
    state: Sequence[int],
    blocks: Sequence[Sequence[int]],
    path: str,
    clock_ns: int = 5,
) -> List[int]:
    """Convenience wrapper: execute a burst and write ``path``."""
    with open(path, "w") as handle:
        writer = VcdWriter(op, handle, clock_ns)
        return writer.run_burst(state, blocks)
