"""Cycle-by-cycle pipeline occupancy traces.

Renders how blocks move through a compiled operation's rows over time —
the picture behind the paper's throughput arithmetic.  The trace makes the
two regimes visible:

* a Derby-mapped CRC (II = 1) keeps every stage busy: block *b* enters at
  cycle *b* and drains ``latency`` cycles later;
* a direct-mapped CRC (II = 2) leaves every other slot empty in the loop
  stages — exactly the bandwidth halving the ablation bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.picoga.op import PicogaOperation


@dataclass(frozen=True)
class PipelineTrace:
    """A complete occupancy matrix for a burst of blocks."""

    op_name: str
    rows: int
    initiation_interval: int
    cycles: int
    occupancy: List[List[Optional[int]]]  # [cycle][row] -> block or None

    def utilization(self) -> float:
        """Fraction of (cycle, row) slots doing useful work."""
        total = self.cycles * self.rows
        busy = sum(1 for cyc in self.occupancy for slot in cyc if slot is not None)
        return busy / total if total else 0.0

    def block_completion_cycle(self, block: int) -> int:
        """Cycle in which a block leaves the last row."""
        for cycle in range(self.cycles - 1, -1, -1):
            if self.occupancy[cycle][self.rows - 1] == block:
                return cycle
        raise ValueError(f"block {block} never reached the last row")

    def render(self, max_cycles: int = 40) -> str:
        """ASCII timeline: rows across, cycles down."""
        lines = [
            f"pipeline trace: {self.op_name} (rows={self.rows}, II={self.initiation_interval})",
            "cycle | " + " ".join(f"r{r:<2d}" for r in range(self.rows)),
        ]
        for cycle, slots in enumerate(self.occupancy[:max_cycles]):
            cells = " ".join(f"{b:<3d}" if b is not None else " . " for b in slots)
            lines.append(f"{cycle:5d} | {cells}")
        if self.cycles > max_cycles:
            lines.append(f"  ... {self.cycles - max_cycles} more cycles")
        return "\n".join(lines)


def trace_burst(op: PicogaOperation, n_blocks: int) -> PipelineTrace:
    """Simulate the row occupancy of ``n_blocks`` consecutive blocks.

    Block *b* is issued at cycle ``b * II`` and occupies row *r* at cycle
    ``b * II + r`` (one row per stage).
    """
    if n_blocks < 1:
        raise ValueError("need at least one block")
    rows = max(op.n_rows, 1)
    ii = op.initiation_interval
    cycles = (n_blocks - 1) * ii + rows
    occupancy: List[List[Optional[int]]] = [[None] * rows for _ in range(cycles)]
    for block in range(n_blocks):
        start = block * ii
        for row in range(rows):
            occupancy[start + row][row] = block
    return PipelineTrace(
        op_name=op.name,
        rows=rows,
        initiation_interval=ii,
        cycles=cycles,
        occupancy=occupancy,
    )
