"""Routing-demand estimation for compiled operations.

PiCoGA's interconnect uses 2-bit-granularity segmented wires (paper §3),
so signals crossing many pipeline stages consume vertical channel tracks.
This module estimates that demand for a placed operation:

* for every net, the *span* from its producing row to its last consumer
  row is the number of row boundaries it must cross;
* per row boundary, the crossing count (rounded up to 2-bit bundles) is
  compared against a per-column channel capacity.

It is a reporting model (the mapper's feasibility checks remain cells,
rows and I/O, matching how the paper describes its limits), but it lets
ablations see *why* very wide feed-forward banks get expensive before
they run out of cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List

from repro.picoga.cell import NetKind
from repro.picoga.op import PicogaOperation
from repro.picoga.report import placement

#: Vertical tracks available per row boundary: 16 columns x 9 segmented
#: track pairs — a mid-grain-fabric-plausible constant, chosen so the
#: paper's realizable maximum (CRC-32 at M = 128) sits near but under the
#: ceiling (~89 % peak utilization), consistent with it being the edge of
#: the design space.
TRACKS_PER_BOUNDARY = 144
WIRE_GRANULARITY_BITS = 2


@dataclass(frozen=True)
class RoutingReport:
    """Per-boundary crossing demand for one operation."""

    op_name: str
    boundaries: List[int]  # signal crossings at each row boundary
    capacity: int

    @property
    def peak_crossings(self) -> int:
        return max(self.boundaries, default=0)

    @property
    def peak_utilization(self) -> float:
        return self.peak_crossings / self.capacity if self.capacity else 0.0

    @property
    def congested(self) -> bool:
        return self.peak_crossings > self.capacity

    def bundles(self) -> List[int]:
        """Crossings rounded up to the 2-bit wire granularity."""
        return [ceil(c / WIRE_GRANULARITY_BITS) for c in self.boundaries]


def estimate_routing(op: PicogaOperation, capacity: int = TRACKS_PER_BOUNDARY) -> RoutingReport:
    """Count signals crossing each row boundary of the placed operation."""
    rows = placement(op)
    if not rows:
        return RoutingReport(op_name=op.name, boundaries=[], capacity=capacity)
    # Map each cell to its physical row.
    cell_row: Dict[int, int] = {}
    cursor = 0
    levels = op.levels
    # placement() groups cells level by level in index order within a level;
    # rebuild the same assignment.
    per_level: Dict[int, List[int]] = {}
    for i in range(op.n_cells):
        per_level.setdefault(levels[i], []).append(i)
    row_index = 0
    width = op.arch.cells_per_row
    for level in sorted(per_level):
        members = per_level[level]
        for off in range(0, len(members), width):
            for c in members[off : off + width]:
                cell_row[c] = row_index
            row_index += 1
    n_rows = row_index

    # Only cell-produced nets consume vertical channel tracks: primary
    # inputs and state registers reach every row through the dedicated
    # input/feedback networks of the array.
    last_consumer: Dict[int, int] = {}
    producer: Dict[int, int] = {}
    for i, cell in enumerate(op.cells):
        for net in cell.inputs:
            if net.kind is not NetKind.CELL:
                continue
            producer[net.index] = cell_row[net.index]
            last_consumer[net.index] = max(
                last_consumer.get(net.index, 0), cell_row[i]
            )
    for net in list(op.outputs) + list(op.next_state):
        if net.kind is not NetKind.CELL:
            continue
        producer[net.index] = cell_row[net.index]
        last_consumer[net.index] = max(last_consumer.get(net.index, 0), n_rows - 1)

    boundaries = [0] * max(n_rows - 1, 0)
    for index, src in producer.items():
        dst = last_consumer.get(index, src)
        for boundary in range(src, dst):
            boundaries[boundary] += 1
    return RoutingReport(op_name=op.name, boundaries=boundaries, capacity=capacity)
