"""The PiCoGA array executor: functional + cycle-level co-simulation.

:class:`PicogaArray` executes resident :class:`PicogaOperation` netlists on
real data while charging architecturally faithful cycle costs:

* the first block of a burst pays the pipeline *fill* (one cycle per row);
* subsequent blocks issue every ``initiation_interval`` cycles;
* switching between cached operations costs 2 cycles **and drains the
  pipeline** (the "pipeline break" of the paper's Fig. 4 discussion);
* a :class:`CycleLedger` keeps an auditable breakdown that the DREAM
  system model and the benchmark harness both consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.picoga.architecture import DREAM_PICOGA, PicogaArchitecture
from repro.picoga.config import ConfigCache
from repro.picoga.op import PicogaOperation


@dataclass
class CycleLedger:
    """Cycle accounting, by cause."""

    fill: int = 0
    issue: int = 0
    switch: int = 0
    load: int = 0
    control: int = 0

    @property
    def total(self) -> int:
        return self.fill + self.issue + self.switch + self.load + self.control

    def __add__(self, other: "CycleLedger") -> "CycleLedger":
        return CycleLedger(
            fill=self.fill + other.fill,
            issue=self.issue + other.issue,
            switch=self.switch + other.switch,
            load=self.load + other.load,
            control=self.control + other.control,
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "fill": self.fill,
            "issue": self.issue,
            "switch": self.switch,
            "load": self.load,
            "control": self.control,
            "total": self.total,
        }


class PicogaArray:
    """One PiCoGA instance with its configuration cache and state registers."""

    def __init__(self, arch: PicogaArchitecture = DREAM_PICOGA):
        self.arch = arch
        self.cache = ConfigCache(arch)
        self.ledger = CycleLedger()
        self._state: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def load_operation(self, op: PicogaOperation, slot: Optional[int] = None) -> None:
        if op.arch is not self.arch and op.arch != self.arch:
            raise ValueError("operation compiled for a different architecture")
        self.ledger.load += self.cache.load(op, slot)
        self._state.setdefault(op.name, [0] * op.n_state)

    def set_state(self, op_name: str, state: Sequence[int]) -> None:
        op = self._resident(op_name)
        if len(state) != op.n_state:
            raise ValueError(f"{op_name} holds {op.n_state} state bits")
        self._state[op_name] = [b & 1 for b in state]

    def get_state(self, op_name: str) -> List[int]:
        self._resident(op_name)
        return list(self._state[op_name])

    def _resident(self, name: str) -> PicogaOperation:
        slot = self.cache.slot_of(name)
        if slot is None:
            raise KeyError(f"operation {name!r} is not resident")
        return self.cache._slots[slot]

    def _activate(self, name: str) -> PicogaOperation:
        cost = self.cache.activate(name)
        self.ledger.switch += cost
        return self.cache.active_op

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_burst(
        self, op_name: str, blocks: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        """Execute consecutive input blocks through one operation.

        Charges fill once, then II cycles per block; returns the per-block
        output bits.  The operation's loop state persists in the array
        between calls (until :meth:`set_state` resets it).
        """
        op = self._activate(op_name)
        outputs: List[List[int]] = []
        if not blocks:
            return outputs
        self.ledger.fill += op.latency_cycles
        state = self._state[op.name]
        for block in blocks:
            outs, nxt = op.evaluate(state, block)
            if nxt:
                state = nxt
            outputs.append(outs)
            self.ledger.issue += op.initiation_interval
        self._state[op.name] = state
        return outputs

    def run_interleaved_burst(
        self,
        op_name: str,
        slot_blocks: Sequence[Tuple[int, Sequence[int]]],
        slot_states: Dict[int, List[int]],
    ) -> List[Tuple[int, List[int]]]:
        """Execute blocks tagged with message-slot ids (Kong–Parhi mode).

        Each slot carries its own loop state (``slot_states`` is updated in
        place).  Because consecutive blocks belong to different messages,
        issue proceeds at one block per cycle even if the operation's own
        loop is deeper — the hardware rationale for interleaving.
        """
        op = self._activate(op_name)
        results: List[Tuple[int, List[int]]] = []
        if not slot_blocks:
            return results
        self.ledger.fill += op.latency_cycles
        for slot, block in slot_blocks:
            state = slot_states[slot]
            outs, nxt = op.evaluate(state, block)
            if nxt:
                slot_states[slot] = nxt
            results.append((slot, outs))
            self.ledger.issue += 1  # interleaving hides the loop latency
        return results

    def charge_control(self, cycles: int) -> None:
        """RISC-side control overhead attributed to the array timeline."""
        if cycles < 0:
            raise ValueError("control cycles must be >= 0")
        self.ledger.control += cycles

    # ------------------------------------------------------------------
    def elapsed_seconds(self) -> float:
        return self.ledger.total * self.arch.cycle_seconds

    def reset_ledger(self) -> None:
        self.ledger = CycleLedger()
