"""Reconfigurable logic cell (RLC) netlist primitives.

A compiled PiCoGA operation is a DAG of single-output cells.  Nets are
identified by :class:`Net` values with three source kinds:

* ``INPUT`` — a primary-input bit (index into the operation's input word);
* ``STATE`` — a loop-carried state register bit (previous block's value);
* ``CELL``  — the output of another cell.

Two cell kinds cover everything the LFSR mapping needs:

* ``XOR`` — parity of up to ``xor_fanin`` inputs (the paper's 10-bit XOR,
  one RLC);
* ``LUT`` — arbitrary boolean function of up to ``lut_inputs`` bits, given
  as a truth table (used for the non-linear helpers in the examples).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


class NetKind(enum.Enum):
    INPUT = "input"
    STATE = "state"
    CELL = "cell"


@dataclass(frozen=True)
class Net:
    """A single-bit signal reference."""

    kind: NetKind
    index: int

    def __post_init__(self):
        if self.index < 0:
            raise ValueError("net index must be >= 0")

    @classmethod
    def input(cls, index: int) -> "Net":
        return cls(NetKind.INPUT, index)

    @classmethod
    def state(cls, index: int) -> "Net":
        return cls(NetKind.STATE, index)

    @classmethod
    def cell(cls, index: int) -> "Net":
        return cls(NetKind.CELL, index)

    def __repr__(self) -> str:
        return f"{self.kind.value}[{self.index}]"


class CellKind(enum.Enum):
    XOR = "xor"
    LUT = "lut"


@dataclass(frozen=True)
class Cell:
    """One RLC configuration: a single-output logic function."""

    index: int
    kind: CellKind
    inputs: Tuple[Net, ...]
    truth_table: Optional[int] = None  # LUT only: bit i = output for input pattern i

    def __post_init__(self):
        if self.index < 0:
            raise ValueError("cell index must be >= 0")
        if not self.inputs:
            raise ValueError("a cell needs at least one input")
        if self.kind is CellKind.LUT:
            if self.truth_table is None:
                raise ValueError("LUT cells need a truth table")
            if self.truth_table >> (1 << len(self.inputs)):
                raise ValueError("truth table wider than 2^inputs bits")
        elif self.truth_table is not None:
            raise ValueError("only LUT cells carry a truth table")

    @property
    def fanin(self) -> int:
        return len(self.inputs)

    def evaluate(self, input_values: Sequence[int]) -> int:
        """Compute the cell output from its input bit values."""
        if len(input_values) != len(self.inputs):
            raise ValueError("input value count mismatch")
        if self.kind is CellKind.XOR:
            out = 0
            for v in input_values:
                out ^= v & 1
            return out
        pattern = 0
        for i, v in enumerate(input_values):
            pattern |= (v & 1) << i
        return (self.truth_table >> pattern) & 1

    def output_net(self) -> Net:
        return Net.cell(self.index)


def xor_cell(index: int, inputs: Sequence[Net]) -> Cell:
    """Convenience constructor for the paper's 10-bit XOR primitive."""
    return Cell(index=index, kind=CellKind.XOR, inputs=tuple(inputs))


def lut_cell(index: int, inputs: Sequence[Net], truth_table: int) -> Cell:
    return Cell(index=index, kind=CellKind.LUT, inputs=tuple(inputs), truth_table=truth_table)
