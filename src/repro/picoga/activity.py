"""Switching-activity measurement for executed netlists.

The analytic energy model (:mod:`repro.analysis.energy`) charges a fixed
per-cell energy per issued block.  This module provides the *measured*
counterpart: while a netlist executes, count how many cell outputs
actually toggle between consecutive blocks.  Dynamic energy in CMOS is
proportional to switching activity, so toggle counts give a data-dependent
energy estimate that the Fig. 7 bench cross-checks against the analytic
band (random data toggles roughly half the nets per block).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.picoga.cell import Net, NetKind
from repro.picoga.op import PicogaOperation


@dataclass
class ActivityReport:
    """Toggle statistics accumulated over a burst of blocks."""

    blocks: int = 0
    cell_evaluations: int = 0
    cell_toggles: int = 0
    output_toggles: int = 0

    @property
    def activity_factor(self) -> float:
        """Fraction of cell outputs that toggled, averaged over blocks."""
        if self.cell_evaluations == 0:
            return 0.0
        return self.cell_toggles / self.cell_evaluations

    def merge(self, other: "ActivityReport") -> "ActivityReport":
        return ActivityReport(
            blocks=self.blocks + other.blocks,
            cell_evaluations=self.cell_evaluations + other.cell_evaluations,
            cell_toggles=self.cell_toggles + other.cell_toggles,
            output_toggles=self.output_toggles + other.output_toggles,
        )


class ActivityMonitor:
    """Evaluates an operation block by block while counting toggles."""

    def __init__(self, op: PicogaOperation):
        self._op = op
        self._previous_values: Optional[List[int]] = None
        self._previous_outputs: Optional[List[int]] = None
        self.report = ActivityReport()

    @property
    def op(self) -> PicogaOperation:
        return self._op

    def reset(self) -> None:
        self._previous_values = None
        self._previous_outputs = None
        self.report = ActivityReport()

    def step(
        self, state: Sequence[int], inputs: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        """One block with toggle accounting; same contract as
        :meth:`PicogaOperation.evaluate`."""
        values = self._evaluate_all(state, inputs)
        outputs = [self._net_value(values, state, inputs, n) for n in self._op.outputs]
        next_state = [
            self._net_value(values, state, inputs, n) for n in self._op.next_state
        ]
        self.report.blocks += 1
        self.report.cell_evaluations += len(values)
        if self._previous_values is not None:
            self.report.cell_toggles += sum(
                1 for a, b in zip(values, self._previous_values) if a != b
            )
            self.report.output_toggles += sum(
                1 for a, b in zip(outputs, self._previous_outputs) if a != b
            )
        else:
            # First block: charge full switching (cold start from unknown).
            self.report.cell_toggles += len(values)
            self.report.output_toggles += len(outputs)
        self._previous_values = values
        self._previous_outputs = outputs
        return outputs, next_state

    def run(self, state: Sequence[int], blocks: Sequence[Sequence[int]]) -> List[int]:
        """Run a burst; returns the final state."""
        current = list(state)
        for block in blocks:
            _, nxt = self.step(current, block)
            if nxt:
                current = nxt
        return current

    # ------------------------------------------------------------------
    def _evaluate_all(self, state: Sequence[int], inputs: Sequence[int]) -> List[int]:
        values: List[int] = []
        for cell in self._op.cells:
            ins = [self._net_value(values, state, inputs, n) for n in cell.inputs]
            values.append(cell.evaluate(ins))
        return values

    @staticmethod
    def _net_value(
        values: List[int], state: Sequence[int], inputs: Sequence[int], net: Net
    ) -> int:
        if net.kind is NetKind.INPUT:
            return inputs[net.index] & 1
        if net.kind is NetKind.STATE:
            return state[net.index] & 1
        return values[net.index]


def measure_crc_activity(mapped, data: bytes) -> ActivityReport:
    """Toggle statistics of a mapped CRC's update op over a real message."""
    spec = mapped.spec
    bits = spec.message_bits(data)
    pad = (-len(bits)) % mapped.M
    stream = [0] * pad + bits
    blocks = [stream[off : off + mapped.M] for off in range(0, len(stream), mapped.M)]
    monitor = ActivityMonitor(mapped.update_op)
    monitor.run([0] * mapped.update_op.n_state, blocks)
    return monitor.report
