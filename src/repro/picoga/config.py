"""PiCoGA configuration-context cache (paper §3).

PiCoGA keeps four configuration layers resident; swapping the active layer
costs only 2 clock cycles, while loading a new configuration from the bus
is far slower.  The paper's CRC uses two contexts (the state-update PGAOP
and the anti-transformation PGAOP); the 2-cycle switch plus the pipeline
break it causes is exactly the per-message overhead that Figs. 4/5 measure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.picoga.architecture import DREAM_PICOGA, PicogaArchitecture
from repro.picoga.op import PicogaOperation

#: Cycles to load one configuration layer from the system bus (not from
#: the cache).  The paper's flows always run from the cache; this cost
#: only appears when more operations than contexts are used.
BUS_LOAD_CYCLES = 600


class ConfigCache:
    """The 4-context configuration store with switch/load accounting."""

    def __init__(self, arch: PicogaArchitecture = DREAM_PICOGA):
        self.arch = arch
        self._slots: List[Optional[PicogaOperation]] = [None] * arch.contexts
        self._active: Optional[int] = None
        self.switch_count = 0
        self.load_count = 0

    # ------------------------------------------------------------------
    @property
    def active_slot(self) -> Optional[int]:
        return self._active

    @property
    def active_op(self) -> Optional[PicogaOperation]:
        return self._slots[self._active] if self._active is not None else None

    def slot_of(self, name: str) -> Optional[int]:
        for i, op in enumerate(self._slots):
            if op is not None and op.name == name:
                return i
        return None

    def loaded_ops(self) -> Dict[int, str]:
        return {i: op.name for i, op in enumerate(self._slots) if op is not None}

    # ------------------------------------------------------------------
    def load(self, op: PicogaOperation, slot: Optional[int] = None) -> int:
        """Install an operation into a context slot; returns cycle cost.

        Loading from the bus is expensive; it evicts whatever the slot held.
        """
        if slot is None:
            slot = self._pick_victim()
        if not 0 <= slot < self.arch.contexts:
            raise ValueError(f"slot {slot} out of range")
        self._slots[slot] = op
        self.load_count += 1
        return BUS_LOAD_CYCLES

    def _pick_victim(self) -> int:
        for i, op in enumerate(self._slots):
            if op is None:
                return i
        # Evict the first non-active slot.
        for i in range(self.arch.contexts):
            if i != self._active:
                return i
        return 0

    def activate(self, name: str) -> int:
        """Make a cached operation active; returns the cycle cost
        (0 if already active, 2 for a cached switch)."""
        slot = self.slot_of(name)
        if slot is None:
            raise KeyError(f"operation {name!r} is not resident in any context")
        if slot == self._active:
            return 0
        first_activation = self._active is None
        self._active = slot
        if first_activation:
            return 0  # initial context selection overlaps with setup
        self.switch_count += 1
        return self.arch.context_switch_cycles
