"""Embedded-FPGA baseline (the paper's §1 platform comparison).

"…the full bit-level programmability offered by embedded FPGAs shows the
undeniable drawback to be paid for added flexibility: the possible working
frequency is reduced."  This model positions an M2000-class embedded FPGA
between the ASIC and PiCoGA points:

* logic is 4-input LUTs, so an n-input parity costs ``ceil(log_4-ish)``
  LUT levels (``depth = ceil(log(n)/log(4))`` for a balanced tree);
* each LUT level costs LUT delay plus *programmable-interconnect* delay —
  the dominant term, and the reason eFPGA clocks sit well below ASIC;
* like the ASIC (and unlike PiCoGA's registered rows), the whole
  look-ahead update is one combinational cone, so the loop depth of the
  direct form sets the clock; the Derby form keeps the serial-depth loop.

Defaults are calibrated to 90 nm embedded-FPGA reality: a serial CRC near
250 MHz, dropping with look-ahead — slower than the 65 nm ASIC everywhere,
faster than nothing, and below DREAM once DREAM's fixed 200 MHz × M
kicks in.  Used by the platform-comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log
from typing import Dict, Sequence

from repro.crc.spec import CRCSpec
from repro.lfsr.pei import pei_lookahead
from repro.lfsr.statespace import crc_statespace

DEFAULT_FACTORS = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class EfpgaTimingModel:
    """LUT4-fabric timing parameters (90 nm embedded FPGA)."""

    lut_inputs: int = 4
    t_reg_ns: float = 0.9  # FF + clock network on a programmable fabric
    t_lut_ns: float = 0.55
    t_route_ns: float = 1.6  # programmable interconnect per level
    t_congestion_ns_per_m: float = 0.05  # routing degradation as the
    # design (state broadcast, feed-forward bank) grows with look-ahead
    f_max_hz: float = 400e6

    def depth_luts(self, fanin: int) -> int:
        if fanin <= 1:
            return 1
        return max(1, ceil(log(fanin) / log(self.lut_inputs)))

    def frequency_hz(self, fanin: int, M: int = 1) -> float:
        levels = self.depth_luts(fanin)
        path_ns = (
            self.t_reg_ns
            + levels * (self.t_lut_ns + self.t_route_ns)
            + self.t_congestion_ns_per_m * M
        )
        return min(1e9 / path_ns, self.f_max_hz)


class EmbeddedFpgaModel:
    """Bandwidth of a parallel CRC mapped on an embedded FPGA."""

    def __init__(self, spec: CRCSpec, timing: EfpgaTimingModel = EfpgaTimingModel(),
                 method: str = "derby"):
        if method not in ("derby", "direct"):
            raise ValueError("method must be 'derby' or 'direct'")
        self.spec = spec
        self.timing = timing
        self.method = method
        self._statespace = crc_statespace(spec.generator())
        self._fanin_cache: Dict[int, int] = {}

    def loop_fanin(self, M: int) -> int:
        """Feedback-cone fan-in: the direct form carries A^M; the Derby
        form keeps the serial 3-input loop (shift + tap + reduced input)."""
        if self.method == "derby":
            return 3
        if M not in self._fanin_cache:
            self._fanin_cache[M] = pei_lookahead(self._statespace, M).loop_fanin()
        return self._fanin_cache[M]

    def frequency_hz(self, M: int) -> float:
        if M < 1:
            raise ValueError("M must be >= 1")
        return self.timing.frequency_hz(self.loop_fanin(M), M)

    def throughput_bps(self, M: int) -> float:
        return M * self.frequency_hz(M)

    def sweep(self, factors: Sequence[int] = DEFAULT_FACTORS) -> Dict[int, float]:
        return {M: self.throughput_bps(M) for M in factors}
