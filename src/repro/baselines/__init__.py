"""Baselines the paper compares against (Table 1, Fig. 6, §5 text).

* :mod:`repro.baselines.risc_crc` — software CRC cycle models on a 200 MHz
  embedded RISC (bit-serial, Sarwate table, slicing-by-8);
* :mod:`repro.baselines.ucrc` — static-timing model of the OpenCores
  "Ultimate CRC" ASIC synthesis;
* :mod:`repro.baselines.theory` — the M-theory (Derby) and M/2-theory
  (Pei–Zukowski) bandwidth curves;
* :mod:`repro.baselines.gfmac_processor` — the 16-GFMAC custom processor
  of reference [10].
"""

from repro.baselines.efpga import EfpgaTimingModel, EmbeddedFpgaModel
from repro.baselines.gfmac_processor import GfmacProcessorConfig, GfmacProcessorModel
from repro.baselines.risc_crc import ALGORITHMS, RiscCostModel, RiscSoftwareCRC, speedup_table
from repro.baselines.theory import m_half_theory_bps, m_theory_bps, theory_sweep
from repro.baselines.ucrc import DEFAULT_FACTORS, UcrcModel, UcrcTimingModel

__all__ = [
    "ALGORITHMS",
    "DEFAULT_FACTORS",
    "EfpgaTimingModel",
    "EmbeddedFpgaModel",
    "GfmacProcessorConfig",
    "GfmacProcessorModel",
    "RiscCostModel",
    "RiscSoftwareCRC",
    "UcrcModel",
    "UcrcTimingModel",
    "m_half_theory_bps",
    "m_theory_bps",
    "speedup_table",
    "theory_sweep",
]
