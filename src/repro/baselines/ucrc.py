"""UCRC ASIC timing model (the paper's Fig. 6 comparison).

The paper synthesized the OpenCores *Ultimate CRC* (a generic parallel CRC
with look-ahead factors 2..512) with Synopsys Design Compiler on ST CMOS LP
65 nm and compared the resulting bandwidth against DREAM.  Without the
proprietary library we reproduce the comparison with a static-timing model
driven by the *actual* feedback network of each design point:

* the per-bit XOR fan-in of the direct look-ahead loop (rows of
  ``[A^M | B_M]``) is computed with the library's own GF(2) machinery;
* the critical path is ``t_reg + depth(fanin) * t_xor2 + t_wire(M)`` where
  ``depth`` is a balanced 2-input XOR tree and ``t_wire`` grows linearly
  with M, modelling the routing/fan-out degradation that dominates large
  flat XOR fabrics on a low-power library;
* bandwidth is ``M * f``.

Default constants are calibrated so the curve reproduces the paper's
qualitative result: a serial UCRC runs near 1 GHz, bandwidth saturates in
the low-20-Gbit/s range, and DREAM's 25.6 Gbit/s at M = 128 edges it out
while being software-programmable (see EXPERIMENTS.md for the recorded
points).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Dict, Sequence

from repro.crc.spec import CRCSpec
from repro.lfsr.pei import pei_lookahead
from repro.lfsr.statespace import crc_statespace

DEFAULT_FACTORS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class UcrcTimingModel:
    """Static-timing parameters for the synthesized parallel CRC."""

    t_reg_ns: float = 0.40  # clk->q + setup on the LP library
    t_xor2_ns: float = 0.25  # one 2-input XOR level
    t_wire_ns_per_m: float = 0.03  # routing/fan-out degradation per look-ahead bit
    f_max_hz: float = 1.2e9  # library/clock-tree ceiling

    def depth_xor2(self, fanin: int) -> int:
        return max(1, ceil(log2(max(fanin, 2))))

    def critical_path_ns(self, fanin: int, M: int) -> float:
        return self.t_reg_ns + self.depth_xor2(fanin) * self.t_xor2_ns + self.t_wire_ns_per_m * M

    def frequency_hz(self, fanin: int, M: int) -> float:
        return min(1e9 / self.critical_path_ns(fanin, M), self.f_max_hz)


class UcrcModel:
    """Synthesis-style bandwidth estimates for a parallel CRC ASIC."""

    def __init__(self, spec: CRCSpec, timing: UcrcTimingModel = UcrcTimingModel()):
        self.spec = spec
        self.timing = timing
        self._statespace = crc_statespace(spec.generator())
        self._fanin_cache: Dict[int, int] = {}

    def loop_fanin(self, M: int) -> int:
        """Worst-case XOR fan-in of the direct look-ahead feedback loop."""
        if M not in self._fanin_cache:
            self._fanin_cache[M] = pei_lookahead(self._statespace, M).loop_fanin()
        return self._fanin_cache[M]

    def frequency_hz(self, M: int) -> float:
        return self.timing.frequency_hz(self.loop_fanin(M), M)

    def throughput_bps(self, M: int) -> float:
        return M * self.frequency_hz(M)

    def serial_frequency_hz(self) -> float:
        return self.frequency_hz(1)

    def serial_throughput_bps(self) -> float:
        return self.throughput_bps(1)

    def sweep(self, factors: Sequence[int] = DEFAULT_FACTORS) -> Dict[int, float]:
        """{M: throughput_bps} over the UCRC-supported look-ahead range."""
        return {M: self.throughput_bps(M) for M in factors}
