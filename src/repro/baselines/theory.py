"""Theoretical bandwidth curves for Fig. 6.

The paper overlays two analytic curves on the UCRC synthesis points, both
anchored to the *serial* UCRC bandwidth:

* **M theory** — Derby's method applied to a custom design: the feedback
  loop keeps its serial complexity, so the serial clock is retained and
  the ideal speed-up is the full look-ahead factor M;
* **M/2 theory** — Pei & Zukowski's direct exponentiation, whose optimized
  feedback still limits the achievable speed-up to ~0.5·M.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.baselines.ucrc import DEFAULT_FACTORS, UcrcModel
from repro.lfsr.pei import pei_speedup_bound


def m_theory_bps(serial_bps: float, M: int) -> float:
    """Derby-method ideal bandwidth: full M speed-up over serial."""
    if M < 1:
        raise ValueError("M must be >= 1")
    return serial_bps * M


def m_half_theory_bps(serial_bps: float, M: int) -> float:
    """Pei-method bound: ~0.5·M speed-up over serial."""
    return serial_bps * pei_speedup_bound(M)


def theory_sweep(
    ucrc: UcrcModel, factors: Sequence[int] = DEFAULT_FACTORS
) -> Dict[str, Dict[int, float]]:
    """Both theory curves anchored to the model's serial synthesis point."""
    serial = ucrc.serial_throughput_bps()
    return {
        "m_theory": {M: m_theory_bps(serial, M) for M in factors},
        "m_half_theory": {M: m_half_theory_bps(serial, M) for M in factors},
    }
