"""Custom GFMAC processor model (the paper's reference [10]).

Ji & Killian report that a configurable processor with 16 Galois-field
multiply-accumulate units at 200 MHz computes the CRC of a 128-bit message
in 2-3 cycles.  This model reproduces that datapoint and generalizes it:
chunks are dispatched across the GFMAC units, plus a short XOR-reduction
tail.  The functional side reuses :class:`repro.crc.GFMACCRC`, so the
model computes *correct* CRCs while charging cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.crc.gfmac import GFMACCRC
from repro.crc.spec import CRCSpec


@dataclass(frozen=True)
class GfmacProcessorConfig:
    """Datapath parameters of the GFMAC-augmented processor."""

    units: int = 16
    chunk_bits: int = 8  # sub-word GFMAC operand width
    clock_hz: float = 200e6
    reduction_cycles: int = 1  # XOR tree over the unit accumulators
    issue_overhead_cycles: int = 1

    def __post_init__(self):
        if self.units < 1 or self.chunk_bits < 1:
            raise ValueError("units and chunk_bits must be >= 1")


class GfmacProcessorModel:
    """Functional + timing model of the 16-GFMAC custom processor."""

    def __init__(self, spec: CRCSpec, config: GfmacProcessorConfig = GfmacProcessorConfig()):
        self.spec = spec
        self.config = config
        self._engine = GFMACCRC(spec, config.chunk_bits)

    def compute(self, data: bytes) -> int:
        return self._engine.compute(data)

    def cycles(self, message_bits: int) -> int:
        if message_bits < 1:
            raise ValueError("message must contain at least one bit")
        chunks = ceil(message_bits / self.config.chunk_bits)
        mac_cycles = ceil(chunks / self.config.units)
        return self.config.issue_overhead_cycles + mac_cycles + self.config.reduction_cycles

    def throughput_bps(self, message_bits: int) -> float:
        return message_bits * self.config.clock_hz / self.cycles(message_bits)

    def matches_cited_figure(self) -> bool:
        """[10]: 2-3 cycles for a 128-bit message — our default charges
        1 issue + 1 MAC wave + 1 reduction = 3 cycles."""
        return 2 <= self.cycles(128) <= 3
