"""Software CRC cost models on an embedded RISC (Table 1 baseline).

The paper compares DREAM against a "Fast software implementation on a RISC
processor working at the same frequency" (200 MHz).  This module couples
the *functional* software engines from :mod:`repro.crc` with per-algorithm
cycle models for a single-issue embedded core:

=============  =======================  =============================
algorithm      inner-loop model         default cost
=============  =======================  =============================
``bitwise``    shift/test/xor per bit   8 cycles / bit
``table``      Sarwate lookup per byte  8 cycles / byte  (paper's [8])
``slicing8``   8 tables, 8 bytes/iter   3 cycles / byte
=============  =======================  =============================

At 200 MHz these give 25 Mbit/s, 200 Mbit/s and ~533 Mbit/s respectively —
the paper's "roughly three orders of magnitude" claim corresponds to the
bit-serial variant (25.6 Gbit/s / 25 Mbit/s ≈ 1000×), while Table 1's
double-digit-to-triple-digit speed-ups correspond to the table-driven
"fast" variant.  All costs are constructor parameters for calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crc.bitwise import BitwiseCRC
from repro.crc.slicing import SlicingCRC
from repro.crc.spec import CRCSpec
from repro.crc.table import TableCRC

ALGORITHMS = ("bitwise", "table", "slicing8")


@dataclass(frozen=True)
class RiscCostModel:
    """Cycle costs of the software CRC inner loops."""

    clock_hz: float = 200e6
    call_overhead_cycles: int = 20
    bitwise_cycles_per_bit: float = 8.0
    table_cycles_per_byte: float = 8.0
    slicing_cycles_per_byte: float = 3.0

    def cycles(self, algorithm: str, message_bits: int) -> float:
        if message_bits < 0:
            raise ValueError("message bits must be >= 0")
        nbytes = message_bits / 8.0
        if algorithm == "bitwise":
            inner = self.bitwise_cycles_per_bit * message_bits
        elif algorithm == "table":
            inner = self.table_cycles_per_byte * nbytes
        elif algorithm == "slicing8":
            inner = self.slicing_cycles_per_byte * nbytes
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
        return self.call_overhead_cycles + inner

    def seconds(self, algorithm: str, message_bits: int) -> float:
        return self.cycles(algorithm, message_bits) / self.clock_hz

    def throughput_bps(self, algorithm: str, message_bits: int) -> float:
        s = self.seconds(algorithm, message_bits)
        return message_bits / s if s else 0.0

    def peak_throughput_bps(self, algorithm: str) -> float:
        """Inner-loop-only bandwidth (infinite message)."""
        if algorithm == "bitwise":
            per_bit = self.bitwise_cycles_per_bit
        elif algorithm == "table":
            per_bit = self.table_cycles_per_byte / 8.0
        elif algorithm == "slicing8":
            per_bit = self.slicing_cycles_per_byte / 8.0
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        return self.clock_hz / per_bit


class RiscSoftwareCRC:
    """Functional software CRC with attached cycle accounting."""

    def __init__(self, spec: CRCSpec, algorithm: str = "table", cost: RiscCostModel = RiscCostModel()):
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
        self.spec = spec
        self.algorithm = algorithm
        self.cost = cost
        if algorithm == "bitwise":
            self._engine = BitwiseCRC(spec)
        elif algorithm == "table":
            self._engine = TableCRC(spec)
        else:
            self._engine = SlicingCRC(spec, 8)

    def compute(self, data: bytes) -> int:
        return self._engine.compute(data)

    def cycles(self, message_bits: int) -> float:
        return self.cost.cycles(self.algorithm, message_bits)

    def throughput_bps(self, message_bits: int) -> float:
        return self.cost.throughput_bps(self.algorithm, message_bits)

    def energy_pj(self, message_bits: int, pj_per_cycle: float = 50.0) -> float:
        """Energy model anchor: 50 pJ/cycle makes the paper's ~400 pJ/bit
        figure for the bit-serial software CRC (8 cycles/bit)."""
        return self.cycles(message_bits) * pj_per_cycle


def speedup_table(
    dream_cycles: Dict[int, float],
    algorithm: str = "table",
    cost: RiscCostModel = RiscCostModel(),
) -> Dict[int, float]:
    """{message_bits: dream_cycles} -> {message_bits: speedup} vs software."""
    return {
        bits: cost.cycles(algorithm, bits) / cycles if cycles else float("inf")
        for bits, cycles in dream_cycles.items()
    }
