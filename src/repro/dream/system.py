"""DREAM system model: RISC control + PiCoGA execution (paper §3-5).

Two complementary interfaces:

* **Executed mode** (:meth:`DreamSystem.execute_crc`,
  :meth:`DreamSystem.execute_crc_interleaved`,
  :meth:`DreamSystem.execute_scrambler`) — runs real data through the
  compiled netlists on a :class:`PicogaArray`, charging cycles in the
  array's ledger.  This is the golden co-simulation: results are checked
  against the software CRC engines, and the cycle ledger *is* the timing.

* **Analytic mode** (:meth:`DreamSystem.crc_single_performance`, …) —
  closed-form cycle counts with exactly the same cost structure, used by
  the benchmark sweeps (thousands of points) where executing every message
  would be wasteful.  The test-suite asserts analytic == executed on
  matched configurations.

Partial final chunks are handled the way a real DREAM driver would: the
stream is zero-padded **at the head** and the engine runs with a zero
initial register, which makes the pad transparent (leading zeros do not
change the message polynomial); the processor then folds the spec's
``init`` preset back in with the linear correction
``reg = raw0 ^ (init * x^N mod G)`` during message finish.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dream.processor import RiscControlModel
from repro.engine.cache import CompileCache, default_cache
from repro.mapping.mapper import MappedCRC, MappedScrambler
from repro.picoga.architecture import DREAM_PICOGA, PicogaArchitecture
from repro.picoga.array import PicogaArray
from repro.telemetry import default_tracer
from repro.telemetry.instrument import record_burst_utilization, record_run_cycles


@dataclass(frozen=True)
class PerformanceResult:
    """Cycle breakdown and derived bandwidth for one workload."""

    workload: str
    payload_bits: int
    cycles: Dict[str, int]
    clock_hz: float

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles.values())

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def throughput_bps(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.payload_bits * self.clock_hz / self.total_cycles

    @property
    def throughput_gbps(self) -> float:
        return self.throughput_bps / 1e9


class DreamSystem:
    """One DREAM instance: a PiCoGA array plus its control processor."""

    def __init__(
        self,
        arch: PicogaArchitecture = DREAM_PICOGA,
        control: Optional[RiscControlModel] = None,
        cache: Optional[CompileCache] = None,
    ):
        self.arch = arch
        self.control = control or RiscControlModel(clock_hz=arch.clock_hz)
        self.cache = cache if cache is not None else default_cache()

    # ==================================================================
    # Compilation (shared LRU cache)
    # ==================================================================
    def compile_crc(self, spec, M: int, method: str = "derby") -> MappedCRC:
        """Map a CRC onto this system's array through the compile cache.

        Repeated requests for the same ``(spec, M, method)`` return the
        identical :class:`MappedCRC` (and thus identical netlists) — the
        software analogue of a PiCoGA configuration-cache hit.
        """
        with default_tracer().span(
            "dream.compile_crc", standard=spec.name, M=M, method=method
        ):
            return self.cache.mapped_crc(spec, M, method=method, arch=self.arch)

    def compile_scrambler(self, spec, M: int) -> MappedScrambler:
        with default_tracer().span("dream.compile_scrambler", M=M):
            return self.cache.mapped_scrambler(spec, M, arch=self.arch)

    # ==================================================================
    # Host-side batch engines (share this system's compile cache)
    # ==================================================================
    def attach_disk_cache(self, root) -> None:
        """Back this system's compile cache with a persistent directory.

        Every artifact compiled afterwards (and every batch engine built
        by :meth:`batch_crc` / :meth:`batch_scrambler`) stores to and
        warms from ``root`` — so a second DREAM run for the same
        standards skips compilation entirely.
        """
        from repro.engine.diskcache import DiskCompileCache

        self.cache.attach_disk(DiskCompileCache(root))

    def _auto_plan(self, kind, spec, M, workload, planner):
        """Resolve the execution plan for an ``auto=True`` engine request.

        ``workload`` overrides the default descriptor (2048-bit messages,
        batch 256 / 8 streams — the telecom frame regime the paper
        benchmarks); ``planner`` overrides :func:`~repro.engine.planner.
        default_planner` so tests can inject synthetic host profiles.
        An explicit ``M`` pins the look-ahead factor the solver may pick.
        """
        from repro.engine.planner import WorkloadDescriptor, default_planner

        if workload is None:
            workload = WorkloadDescriptor(
                kind=kind,
                standard=spec.name,
                message_bits=2048,
                batch=256 if kind != "crc-stream" else 1,
                streams=8 if kind == "crc-stream" else 1,
                M=M,
            )
        active = planner if planner is not None else default_planner()
        return active.plan(workload)

    def batch_crc(
        self,
        spec,
        M: Optional[int] = None,
        method: str = "lookahead",
        workers=None,
        plan=None,
        auto: bool = False,
        workload=None,
        planner=None,
    ):
        """A host-side sharded CRC engine wired to this system's cache.

        ``spec`` is a :class:`~repro.crc.CRCSpec` or a catalog name
        (``"CRC-32"``).  ``workers`` resolves per :func:`repro.engine.parallel.resolve_workers`
        (explicit > ``$REPRO_WORKERS`` > 1); ``workers=1`` degenerates to
        the serial :class:`~repro.engine.batch.BatchCRC` path.  Use this
        for golden-model throughput runs that mirror a DREAM deployment:
        the same ``(spec, M, method)`` artifacts the netlists were mapped
        from drive the software kernels, so cache hits are shared.

        Pass ``auto=True`` (optionally with a ``workload`` descriptor and
        an injected ``planner``) to let the execution planner pick
        backend x workers x M — the software analogue of the paper's §2
        design-space mapper; or hand in a solved ``plan`` directly.
        Explicit arguments always win over the plan's choices.  ``M``
        may be omitted when a plan supplies it.
        """
        from repro.engine.parallel import ParallelBatchCRC

        if isinstance(spec, str):
            from repro.crc import get as _get_crc

            spec = _get_crc(spec)
        with default_tracer().span(
            "dream.batch_crc", standard=spec.name, method=method, auto=auto
        ):
            if auto and plan is None:
                plan = self._auto_plan("crc-batch", spec, M, workload, planner)
            if M is None:
                if plan is None:
                    raise ValueError("batch_crc needs M= (or plan=/auto=True)")
                M = plan.M
            return ParallelBatchCRC(
                spec, M, method=method, workers=workers, cache=self.cache, plan=plan
            )

    def batch_scrambler(
        self,
        spec,
        M: Optional[int] = None,
        workers=None,
        plan=None,
        auto: bool = False,
        workload=None,
        planner=None,
    ):
        """A host-side sharded additive scrambler on this system's cache.

        ``spec`` is a scrambler spec or a registry name (``"DVB"``);
        ``plan=`` / ``auto=True`` behave exactly as on :meth:`batch_crc`.
        """
        from repro.engine.parallel import ParallelBatchAdditiveScrambler

        if isinstance(spec, str):
            from repro.scrambler.specs import get as _get_scrambler

            spec = _get_scrambler(spec)
        with default_tracer().span(
            "dream.batch_scrambler", standard=spec.name, auto=auto
        ):
            if auto and plan is None:
                plan = self._auto_plan("scrambler-batch", spec, M, workload, planner)
            if M is None:
                if plan is None:
                    raise ValueError("batch_scrambler needs M= (or plan=/auto=True)")
                M = plan.M
            return ParallelBatchAdditiveScrambler(
                spec, M, workers=workers, cache=self.cache, plan=plan
            )

    def crc_pipeline(
        self,
        spec,
        M: Optional[int] = None,
        method: str = "lookahead",
        workers=None,
        plan=None,
        auto: bool = False,
        workload=None,
        planner=None,
    ):
        """A sharded streaming CRC pipeline on this system's cache.

        ``spec`` is a :class:`~repro.crc.CRCSpec` or a catalog name;
        ``plan=`` / ``auto=True`` behave exactly as on :meth:`batch_crc`
        (the auto workload defaults to the ``crc-stream`` kind).
        """
        from repro.engine.parallel import ShardedCRCPipeline

        if isinstance(spec, str):
            from repro.crc import get as _get_crc

            spec = _get_crc(spec)
        with default_tracer().span(
            "dream.crc_pipeline", standard=spec.name, method=method, auto=auto
        ):
            if auto and plan is None:
                plan = self._auto_plan("crc-stream", spec, M, workload, planner)
            if M is None:
                if plan is None:
                    raise ValueError("crc_pipeline needs M= (or plan=/auto=True)")
                M = plan.M
            return ShardedCRCPipeline(
                spec, M, method=method, workers=workers, cache=self.cache, plan=plan
            )

    # ==================================================================
    # Analytic mode
    # ==================================================================
    def predict_crc(
        self, spec, M: int, message_bits: int, method: str = "derby"
    ) -> PerformanceResult:
        """Spec-level analytic shortcut: cached compile + Fig. 4 model."""
        return self.crc_single_performance(self.compile_crc(spec, M, method), message_bits)

    def predict_crc_interleaved(
        self, spec, M: int, message_bits: int, n_messages: int = 32, method: str = "derby"
    ) -> PerformanceResult:
        """Spec-level analytic shortcut: cached compile + Fig. 5 model."""
        return self.crc_interleaved_performance(
            self.compile_crc(spec, M, method), message_bits, n_messages
        )

    def predict_scrambler(
        self, spec, M: int, block_bits: int, n_blocks: int = 1
    ) -> PerformanceResult:
        """Spec-level analytic shortcut: cached compile + Fig. 8 model."""
        return self.scrambler_performance(self.compile_scrambler(spec, M), block_bits, n_blocks)
    def crc_single_performance(self, mapped: MappedCRC, message_bits: int) -> PerformanceResult:
        """Fig. 4 model: one message, including control and the
        configuration-switch pipeline break."""
        if message_bits < 1:
            raise ValueError("message must contain at least one bit")
        op1 = mapped.update_op
        blocks = ceil(message_bits / mapped.M)
        cycles = {
            "control": self.control.single_message_control(),
            "fill": op1.latency_cycles,
            "issue": blocks * op1.initiation_interval,
        }
        if mapped.output_op is not None:
            cycles["switch"] = self.arch.context_switch_cycles  # break to op2
            cycles["finalize"] = mapped.output_op.latency_cycles + 1  # fill + one issue
        else:
            cycles["switch"] = 0
            cycles["finalize"] = 0
        return PerformanceResult(
            workload=f"crc-single-M{mapped.M}",
            payload_bits=message_bits,
            cycles=cycles,
            clock_hz=self.arch.clock_hz,
        )

    def crc_interleaved_performance(
        self, mapped: MappedCRC, message_bits: int, n_messages: int = 32
    ) -> PerformanceResult:
        """Fig. 5 model: ``n_messages`` equal-length messages interleaved.

        Blocks from different messages fill every pipeline slot, so issue
        proceeds one block per cycle regardless of the loop; the context
        switch and the anti-transformation are paid once per *batch*, with
        one op2 issue per message.
        """
        if message_bits < 1 or n_messages < 1:
            raise ValueError("message bits and count must be >= 1")
        op1 = mapped.update_op
        blocks = ceil(message_bits / mapped.M) * n_messages
        cycles = {
            "control": self.control.interleaved_control(n_messages),
            "fill": op1.latency_cycles,
            "issue": blocks,  # interleaving hides the loop II
        }
        if mapped.output_op is not None:
            cycles["switch"] = self.arch.context_switch_cycles
            cycles["finalize"] = mapped.output_op.latency_cycles + n_messages
        else:
            cycles["switch"] = 0
            cycles["finalize"] = 0
        return PerformanceResult(
            workload=f"crc-interleaved{n_messages}-M{mapped.M}",
            payload_bits=message_bits * n_messages,
            cycles=cycles,
            clock_hz=self.arch.clock_hz,
        )

    def crc_kernel_performance(self, mapped: MappedCRC, message_bits: int) -> PerformanceResult:
        """Fig. 6 model: computational kernel only — no communication or
        configuration overhead (the paper's infinite-message condition)."""
        blocks = ceil(message_bits / mapped.M)
        return PerformanceResult(
            workload=f"crc-kernel-M{mapped.M}",
            payload_bits=message_bits,
            cycles={"issue": blocks * mapped.update_op.initiation_interval},
            clock_hz=self.arch.clock_hz,
        )

    def scrambler_performance(
        self, mapped: MappedScrambler, block_bits: int, n_blocks: int = 1
    ) -> PerformanceResult:
        """Fig. 8 model: single PGAOP, no switch; per-burst control only."""
        if block_bits < 1 or n_blocks < 1:
            raise ValueError("block bits and count must be >= 1")
        op = mapped.op
        chunks = ceil(block_bits / mapped.M)
        cycles = {
            "control": n_blocks * self.control.block_setup_cycles,
            "fill": n_blocks * op.latency_cycles,
            "issue": n_blocks * chunks * op.initiation_interval,
        }
        return PerformanceResult(
            workload=f"scrambler-M{mapped.M}",
            payload_bits=block_bits * n_blocks,
            cycles=cycles,
            clock_hz=self.arch.clock_hz,
        )

    # ==================================================================
    # Executed mode (co-simulation)
    # ==================================================================
    def _prepare_array(self, mapped: MappedCRC) -> PicogaArray:
        array = PicogaArray(self.arch)
        array.load_operation(mapped.update_op, slot=0)
        if mapped.output_op is not None:
            array.load_operation(mapped.output_op, slot=1)
        array.reset_ledger()  # configuration load is not part of Fig. 4/5
        return array

    def _head_padded_blocks(self, mapped: MappedCRC, data: bytes) -> Tuple[List[List[int]], int]:
        bits = mapped.spec.message_bits(data)
        pad = (-len(bits)) % mapped.M
        stream = [0] * pad + bits
        blocks = [
            list(stream[off : off + mapped.M]) for off in range(0, len(stream), mapped.M)
        ]
        return blocks, len(bits)

    def _init_correction(self, mapped: MappedCRC, raw0: int, n_bits: int) -> int:
        return raw0 ^ self.cache.init_fold(mapped.spec, n_bits)

    def execute_crc(self, mapped: MappedCRC, data: bytes) -> Tuple[int, PerformanceResult]:
        """Run one message through the netlists; return (crc, timing).

        Zero-length messages are legal: no blocks issue, the zero start
        register passes through untouched, and the init-fold correction
        reduces to the spec's init — exactly ``finalize(init)``.
        """
        with default_tracer().span(
            "dream.execute_crc", standard=mapped.spec.name, M=mapped.M
        ):
            array = self._prepare_array(mapped)
            array.charge_control(self.control.single_message_control())
            blocks, n_bits = self._head_padded_blocks(mapped, data)
            zero_state = [0] * mapped.update_op.n_state  # raw register 0 transforms to 0
            array.set_state(mapped.update_op.name, zero_state)
            array.run_burst(mapped.update_op.name, blocks)
            state = array.get_state(mapped.update_op.name)
            if mapped.output_op is not None:
                outs = array.run_burst(mapped.output_op.name, [state])
                raw0 = _bits_to_int(outs[0])
            else:
                raw0 = _bits_to_int(state)
            register = self._init_correction(mapped, raw0, n_bits)
            crc = mapped.spec.finalize(register)
            ledger = array.ledger.as_dict()
            ledger.pop("total")
            result = PerformanceResult(
                workload=f"crc-single-M{mapped.M}-executed",
                payload_bits=n_bits,
                cycles=ledger,
                clock_hz=self.arch.clock_hz,
            )
        record_run_cycles("crc-single", ledger, n_bits)
        op = mapped.update_op
        record_burst_utilization(
            op.name, op.n_rows, op.initiation_interval, len(blocks)
        )
        return crc, result

    def execute_crc_interleaved(
        self, mapped: MappedCRC, messages: Sequence[bytes]
    ) -> Tuple[List[int], PerformanceResult]:
        """Kong–Parhi batch through the netlists; returns (crcs, timing)."""
        if not messages:
            raise ValueError("need at least one message")
        with default_tracer().span(
            "dream.execute_crc_interleaved",
            standard=mapped.spec.name,
            M=mapped.M,
            n_messages=len(messages),
        ):
            array = self._prepare_array(mapped)
            array.charge_control(self.control.interleaved_control(len(messages)))
            per_message = [self._head_padded_blocks(mapped, m) for m in messages]
            slot_states: Dict[int, List[int]] = {
                i: [0] * mapped.update_op.n_state for i in range(len(messages))
            }
            # Round-robin schedule: one block per live message per round.
            schedule: List[Tuple[int, Sequence[int]]] = []
            max_blocks = max(len(blocks) for blocks, _ in per_message)
            for round_idx in range(max_blocks):
                for slot, (blocks, _) in enumerate(per_message):
                    if round_idx < len(blocks):
                        schedule.append((slot, blocks[round_idx]))
            array.run_interleaved_burst(mapped.update_op.name, schedule, slot_states)
            crcs: List[int] = []
            if mapped.output_op is not None:
                finals = array.run_burst(
                    mapped.output_op.name, [slot_states[i] for i in range(len(messages))]
                )
                raws = [_bits_to_int(bits) for bits in finals]
            else:
                raws = [_bits_to_int(slot_states[i]) for i in range(len(messages))]
            for raw0, (_, n_bits) in zip(raws, per_message):
                register = self._init_correction(mapped, raw0, n_bits)
                crcs.append(mapped.spec.finalize(register))
            ledger = array.ledger.as_dict()
            ledger.pop("total")
            result = PerformanceResult(
                workload=f"crc-interleaved{len(messages)}-M{mapped.M}-executed",
                payload_bits=sum(n for _, n in per_message),
                cycles=ledger,
                clock_hz=self.arch.clock_hz,
            )
        record_run_cycles("crc-interleaved", ledger, result.payload_bits)
        op = mapped.update_op
        # Interleaved issue fills every slot: blocks from different messages
        # hide the loop, so the effective initiation interval is 1.
        record_burst_utilization(op.name, op.n_rows, 1, len(schedule))
        return crcs, result

    def execute_scrambler(
        self, mapped: MappedScrambler, bits: Sequence[int], seed: Optional[int] = None
    ) -> Tuple[List[int], PerformanceResult]:
        """Scramble a block through the netlist; returns (bits, timing)."""
        with default_tracer().span(
            "dream.execute_scrambler", M=mapped.M, n_bits=len(bits)
        ):
            array = PicogaArray(self.arch)
            array.load_operation(mapped.op, slot=0)
            array.reset_ledger()
            array.charge_control(self.control.block_setup_cycles)
            array.set_state(mapped.op.name, mapped.initial_state_bits(seed))
            blocks = []
            for off in range(0, len(bits), mapped.M):
                chunk = list(bits[off : off + mapped.M])
                chunk += [0] * (mapped.M - len(chunk))
                blocks.append(chunk)
            outs = array.run_burst(mapped.op.name, blocks)
            flat: List[int] = []
            for block_out in outs:
                flat.extend(block_out)
            ledger = array.ledger.as_dict()
            ledger.pop("total")
            result = PerformanceResult(
                workload=f"scrambler-M{mapped.M}-executed",
                payload_bits=len(bits),
                cycles=ledger,
                clock_hz=self.arch.clock_hz,
            )
        record_run_cycles("scrambler", ledger, len(bits))
        op = mapped.op
        record_burst_utilization(op.name, op.n_rows, op.initiation_interval, len(blocks))
        return flat[: len(bits)], result


def _bits_to_int(bits: Sequence[int]) -> int:
    value = 0
    for i, bit in enumerate(bits):
        value |= (bit & 1) << i
    return value
