"""RISC control-core cost model (the STxP70 side of DREAM).

The paper's Fig. 4 discussion attributes the single-message throughput loss
to "the control overhead introduced by the processor and the pipeline break
caused by the configuration switch".  This module models the processor side
as explicit cycle charges; all values are parameters so the benches can
calibrate or ablate them.

The default numbers describe a tight hand-written control loop on a 200 MHz
embedded RISC sharing the clock with PiCoGA:

* ``message_setup_cycles`` — program the data movers, reset the state,
  select the update context;
* ``message_finish_cycles`` — trigger the anti-transformation, read the
  32-bit result, apply the init/xorout correction;
* ``interleave_batch_cycles`` / ``interleave_per_message_cycles`` — batch
  bookkeeping for Kong–Parhi interleaved mode, where most per-message work
  overlaps with array execution;
* ``block_setup_cycles`` — per-burst cost for the scrambler (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RiscControlModel:
    """Cycle charges for DREAM's control processor."""

    message_setup_cycles: int = 40
    message_finish_cycles: int = 20
    interleave_batch_cycles: int = 60
    interleave_per_message_cycles: int = 3
    block_setup_cycles: int = 10
    clock_hz: float = 200e6

    def __post_init__(self):
        for name in (
            "message_setup_cycles",
            "message_finish_cycles",
            "interleave_batch_cycles",
            "interleave_per_message_cycles",
            "block_setup_cycles",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")

    # ------------------------------------------------------------------
    def single_message_control(self) -> int:
        """Per-message control charge in single-message mode."""
        return self.message_setup_cycles + self.message_finish_cycles

    def interleaved_control(self, n_messages: int) -> int:
        """Control charge for one interleaved batch: the batch setup plus a
        small non-overlappable residue per message."""
        if n_messages < 1:
            raise ValueError("need at least one message")
        return self.interleave_batch_cycles + n_messages * self.interleave_per_message_cycles
