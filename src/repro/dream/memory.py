"""Local memory subsystem model (paper §3: "a Pipelined Configurable Gate
Array (PiCoGA) directly accessing a local high-bandwidth memory
sub-system").

The throughput model elsewhere assumes the data movers keep the array's
input ports full.  This module makes that assumption checkable: a banked
local buffer with a per-cycle port width feeds the array, and messages are
staged into it by a DMA engine.  Two questions it answers:

* **Sustainment** — can the memory system source M bits/cycle for a given
  look-ahead factor?  (The DREAM buffer is sized so that the answer is yes
  up to M = 128 and no beyond — one more reason, besides cells, that the
  paper's ceiling is 128.)
* **Staging cost** — what does it cost to land a message in the local
  buffer before compute starts, and can that DMA be overlapped with the
  previous message's compute (double buffering)?
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil


@dataclass(frozen=True)
class LocalMemoryModel:
    """Banked local buffer + DMA front end."""

    banks: int = 4
    bank_width_bits: int = 32  # read width per bank per cycle
    bank_words: int = 2048  # capacity per bank (32-bit words)
    dma_width_bits: int = 64  # system-bus transfer width per cycle
    dma_setup_cycles: int = 12
    double_buffered: bool = True

    def __post_init__(self):
        for name in ("banks", "bank_width_bits", "bank_words", "dma_width_bits"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.dma_setup_cycles < 0:
            raise ValueError("dma_setup_cycles must be >= 0")

    # ------------------------------------------------------------------
    @property
    def read_bandwidth_bits_per_cycle(self) -> int:
        return self.banks * self.bank_width_bits

    @property
    def capacity_bits(self) -> int:
        return self.banks * self.bank_words * self.bank_width_bits

    def sustains_lookahead(self, M: int) -> bool:
        """Can the buffer feed M bits to the array every cycle?"""
        if M < 1:
            raise ValueError("M must be >= 1")
        return M <= self.read_bandwidth_bits_per_cycle

    def max_sustained_m(self) -> int:
        return self.read_bandwidth_bits_per_cycle

    # ------------------------------------------------------------------
    def staging_cycles(self, message_bits: int) -> int:
        """DMA cycles to land one message in the local buffer."""
        if message_bits < 1:
            raise ValueError("message must contain at least one bit")
        if message_bits > self.capacity_bits:
            raise ValueError(
                f"{message_bits}-bit message exceeds the {self.capacity_bits}-bit buffer"
            )
        return self.dma_setup_cycles + ceil(message_bits / self.dma_width_bits)

    def exposed_staging_cycles(self, message_bits: int, compute_cycles: int) -> int:
        """Staging cycles that cannot hide behind compute.

        With double buffering the DMA of message *n+1* overlaps the
        compute of message *n*; only the excess beyond the compute time is
        exposed.  Without it, the full staging cost serializes.
        """
        staging = self.staging_cycles(message_bits)
        if not self.double_buffered:
            return staging
        return max(0, staging - compute_cycles)

    def effective_throughput_bps(
        self, message_bits: int, compute_cycles: int, clock_hz: float = 200e6
    ) -> float:
        """Steady-state bandwidth including exposed data movement."""
        if compute_cycles < 1:
            raise ValueError("compute cycles must be >= 1")
        exposed = self.exposed_staging_cycles(message_bits, compute_cycles)
        return message_bits * clock_hz / (compute_cycles + exposed)


#: The DREAM-like default: 4 x 32-bit banks sustain exactly M = 128.
DREAM_MEMORY = LocalMemoryModel()
