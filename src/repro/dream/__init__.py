"""DREAM adaptive-DSP system model: RISC control core + PiCoGA array.

* :mod:`repro.dream.processor` — control-overhead cost model (STxP70 side);
* :mod:`repro.dream.system` — :class:`DreamSystem` with executed
  (co-simulating) and analytic timing modes;
* :mod:`repro.dream.drivers` — :class:`CRCAccelerator` /
  :class:`ScramblerAccelerator`, the user-facing offload objects.
"""

from repro.dream.drivers import CRCAccelerator, ScramblerAccelerator
from repro.dream.memory import DREAM_MEMORY, LocalMemoryModel
from repro.dream.processor import RiscControlModel
from repro.dream.scheduler import Job, ScheduleReport, WorkloadScheduler
from repro.dream.system import DreamSystem, PerformanceResult

__all__ = [
    "CRCAccelerator",
    "DREAM_MEMORY",
    "DreamSystem",
    "LocalMemoryModel",
    "Job",
    "ScheduleReport",
    "WorkloadScheduler",
    "PerformanceResult",
    "RiscControlModel",
    "ScramblerAccelerator",
]
