"""Multi-personality workload scheduling on one DREAM instance.

The flexibility story of the paper's introduction, made quantitative: a
multi-standard device juggles several LFSR personalities (different CRC
standards, scramblers) on one array.  The 4-context configuration cache
absorbs switches between up to four resident personalities at 2 cycles
each; a fifth personality forces a bus reload (hundreds of cycles).  The
scheduler replays a job trace against this model and reports where the
time went — the context-thrashing ablation bench sweeps working-set size
against exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional, Sequence, Union

from repro.dream.processor import RiscControlModel
from repro.mapping.mapper import MappedCRC, MappedScrambler
from repro.picoga.architecture import DREAM_PICOGA, PicogaArchitecture
from repro.picoga.config import BUS_LOAD_CYCLES

Personality = Union[MappedCRC, MappedScrambler]


@dataclass(frozen=True)
class Job:
    """One unit of work: a message/burst for a named personality."""

    personality: str
    payload_bits: int

    def __post_init__(self):
        if self.payload_bits < 1:
            raise ValueError("payload must contain at least one bit")


@dataclass
class ScheduleReport:
    """Cycle accounting for a replayed job trace."""

    jobs: int = 0
    compute_cycles: int = 0
    control_cycles: int = 0
    switch_cycles: int = 0
    reload_cycles: int = 0
    reloads: int = 0
    switches: int = 0

    @property
    def total_cycles(self) -> int:
        return (
            self.compute_cycles
            + self.control_cycles
            + self.switch_cycles
            + self.reload_cycles
        )

    @property
    def configuration_overhead(self) -> float:
        """Fraction of time lost to switches and reloads."""
        total = self.total_cycles
        return (self.switch_cycles + self.reload_cycles) / total if total else 0.0

    def throughput_bps(self, payload_bits: int, clock_hz: float) -> float:
        return payload_bits * clock_hz / self.total_cycles if self.total_cycles else 0.0


class WorkloadScheduler:
    """Replay job traces with LRU context management."""

    def __init__(
        self,
        personalities: Dict[str, Personality],
        arch: PicogaArchitecture = DREAM_PICOGA,
        control: Optional[RiscControlModel] = None,
    ):
        if not personalities:
            raise ValueError("need at least one personality")
        self.arch = arch
        self.control = control or RiscControlModel(clock_hz=arch.clock_hz)
        self._personalities = dict(personalities)
        for name, p in self._personalities.items():
            if self._contexts_needed(p) > arch.contexts:
                raise ValueError(f"{name} needs more contexts than the array has")
        self._resident: List[str] = []  # LRU order, most recent last

    @staticmethod
    def _contexts_needed(p: Personality) -> int:
        if isinstance(p, MappedCRC):
            return 2 if p.output_op is not None else 1
        return 1

    def _job_cycles(self, p: Personality, payload_bits: int) -> tuple:
        """(compute, control) cycles for one job on a resident personality."""
        if isinstance(p, MappedCRC):
            blocks = ceil(payload_bits / p.M)
            compute = p.update_op.latency_cycles + blocks * p.update_op.initiation_interval
            if p.output_op is not None:
                compute += self.arch.context_switch_cycles
                compute += p.output_op.latency_cycles + 1
            return compute, self.control.single_message_control()
        blocks = ceil(payload_bits / p.M)
        compute = p.op.latency_cycles + blocks * p.op.initiation_interval
        return compute, self.control.block_setup_cycles

    def _touch(self, name: str, report: ScheduleReport) -> None:
        """Bring a personality's contexts in; charge switch or reload."""
        slots_needed = sum(
            self._contexts_needed(self._personalities[n]) for n in self._resident
        )
        if name in self._resident:
            if self._resident[-1] != name:
                report.switch_cycles += self.arch.context_switch_cycles
                report.switches += 1
            self._resident.remove(name)
            self._resident.append(name)
            return
        need = self._contexts_needed(self._personalities[name])
        while self._resident and slots_needed + need > self.arch.contexts:
            evicted = self._resident.pop(0)
            slots_needed -= self._contexts_needed(self._personalities[evicted])
        report.reload_cycles += need * BUS_LOAD_CYCLES
        report.reloads += 1
        self._resident.append(name)

    # ------------------------------------------------------------------
    def run(self, trace: Sequence[Job]) -> ScheduleReport:
        report = ScheduleReport()
        for job in trace:
            if job.personality not in self._personalities:
                raise KeyError(f"unknown personality {job.personality!r}")
            self._touch(job.personality, report)
            compute, control = self._job_cycles(
                self._personalities[job.personality], job.payload_bits
            )
            report.compute_cycles += compute
            report.control_cycles += control
            report.jobs += 1
        return report

    def resident_personalities(self) -> List[str]:
        return list(self._resident)
