"""High-level application drivers: accelerators a user would instantiate.

:class:`CRCAccelerator` and :class:`ScramblerAccelerator` tie a protocol
spec, a look-ahead factor and a DREAM system together: construction runs
the mapper (matrices, pattern sharing, packing), and calls both execute the
compiled netlists and return architecturally faithful timing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.crc.spec import CRCSpec
from repro.dream.system import DreamSystem, PerformanceResult
from repro.mapping.mapper import MappedCRC, MappedScrambler, map_crc, map_scrambler
from repro.picoga.architecture import DREAM_PICOGA, PicogaArchitecture
from repro.scrambler.specs import ScramblerSpec


class CRCAccelerator:
    """A CRC standard offloaded onto DREAM at a chosen look-ahead factor."""

    def __init__(
        self,
        spec: CRCSpec,
        M: int = 128,
        method: str = "derby",
        arch: PicogaArchitecture = DREAM_PICOGA,
        system: Optional[DreamSystem] = None,
    ):
        self.spec = spec
        self.mapped: MappedCRC = map_crc(spec, M, method=method, arch=arch)
        self.system = system or DreamSystem(arch)

    @property
    def M(self) -> int:
        return self.mapped.M

    # ------------------------------------------------------------------
    def compute(self, data: bytes) -> int:
        """CRC of ``data`` through the compiled netlists."""
        crc, _ = self.system.execute_crc(self.mapped, data)
        return crc

    def compute_with_timing(self, data: bytes) -> Tuple[int, PerformanceResult]:
        return self.system.execute_crc(self.mapped, data)

    def compute_batch(self, messages: Sequence[bytes]) -> List[int]:
        """Interleaved batch (Kong–Parhi mode)."""
        crcs, _ = self.system.execute_crc_interleaved(self.mapped, messages)
        return crcs

    # ------------------------------------------------------------------
    def predicted_performance(self, message_bits: int) -> PerformanceResult:
        return self.system.crc_single_performance(self.mapped, message_bits)

    def predicted_interleaved(self, message_bits: int, ways: int = 32) -> PerformanceResult:
        return self.system.crc_interleaved_performance(self.mapped, message_bits, ways)

    def kernel_bandwidth_gbps(self) -> float:
        """Peak (infinite-message) bandwidth: M / II blocks per cycle."""
        ii = self.mapped.update_op.initiation_interval
        return self.M / ii * self.system.arch.clock_hz / 1e9


class ScramblerAccelerator:
    """An additive scrambler offloaded onto DREAM (single PGAOP)."""

    def __init__(
        self,
        spec: ScramblerSpec,
        M: int = 128,
        arch: PicogaArchitecture = DREAM_PICOGA,
        system: Optional[DreamSystem] = None,
    ):
        self.spec = spec
        self.mapped: MappedScrambler = map_scrambler(spec, M, arch=arch)
        self.system = system or DreamSystem(arch)

    @property
    def M(self) -> int:
        return self.mapped.M

    def scramble_bits(self, bits: Sequence[int], seed: Optional[int] = None) -> List[int]:
        out, _ = self.system.execute_scrambler(self.mapped, bits, seed)
        return out

    def scramble_with_timing(
        self, bits: Sequence[int], seed: Optional[int] = None
    ) -> Tuple[List[int], PerformanceResult]:
        return self.system.execute_scrambler(self.mapped, bits, seed)

    def predicted_performance(self, block_bits: int, n_blocks: int = 1) -> PerformanceResult:
        return self.system.scrambler_performance(self.mapped, block_bits, n_blocks)

    def kernel_bandwidth_gbps(self) -> float:
        ii = self.mapped.op.initiation_interval
        return self.M / ii * self.system.arch.clock_hz / 1e9
