"""Typed exception taxonomy for the repro library.

Every public engine, pipeline and spec entry point raises one of these
types for invalid input or failed compilation, so callers can distinguish
"you passed garbage" (:class:`ValidationError`), "this parameter set is
not a valid spec" (:class:`SpecError`), "that stream does not exist"
(:class:`StreamError`) and "the artifact could not be compiled"
(:class:`CompileError`) without string-matching messages.

For backward compatibility each class also subclasses the builtin the
library historically raised in that situation (``ValueError``,
``KeyError``, ``RuntimeError``), so existing ``except ValueError`` /
``except KeyError`` call sites keep working unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the repro library.

    Errors can carry structured diagnostic context (``exc.context``):
    the parallel engine attaches a flight-recorder dump there when a
    worker shard fails, so the exception itself names the failed worker
    and its last recorded events (see ``docs/OBSERVABILITY.md``).
    """

    #: Structured diagnostic context; ``None`` until :meth:`with_context`
    #: populates a per-instance dict.
    context = None

    def with_context(self, **entries: object) -> "ReproError":
        """Attach structured diagnostics to this error; returns ``self``.

        Entries accumulate across calls — later values win on key
        collision — and live in an instance-level ``context`` dict.
        """
        if self.context is None:
            self.context = {}
        self.context.update(entries)
        return self

    def __str__(self) -> str:
        # KeyError-derived subclasses would otherwise repr() the message
        # (quotes around the text); render the plain message everywhere.
        if len(self.args) == 1:
            return str(self.args[0])
        return ", ".join(str(a) for a in self.args)


class SpecError(ReproError, ValueError, KeyError):
    """A CRC/scrambler parameter set is malformed, or a catalog lookup
    named an unknown standard.

    Subclasses both ``ValueError`` (malformed parameters) and ``KeyError``
    (unknown catalog name) — the two builtins these paths used to raise.
    """


class ValidationError(ReproError, ValueError):
    """An argument to a public engine/pipeline API is invalid: non-bit
    values, a wrong-width seed/state/register, mismatched batch lengths,
    a bad block factor, and so on."""


class StreamError(ReproError, KeyError):
    """A pipeline stream id is unknown, already open, or already closed."""


class CompileError(ReproError, RuntimeError):
    """An engine artifact (look-ahead system, Derby transform, PiCoGA
    netlist) could not be compiled for the requested ``(spec, M, method)``."""


class ProtocolError(ReproError, ValueError):
    """A ``repro.serve`` wire frame is malformed: bad length prefix,
    oversized frame, non-JSON header, unknown verb, or a binary payload
    that disagrees with its declared length."""


class DrainingError(StreamError):
    """The server refused an ``open-stream`` because it is draining.

    A :class:`StreamError` subclass (``except StreamError`` call sites
    keep working) that is nonetheless *transient and retryable*: unlike
    a caller-side id mistake, the request was well-formed — the server
    is simply shutting down gracefully.  Clients should retry against
    another replica or after a fresh connection; :attr:`retryable`
    marks that machine-readably.
    """

    #: Always True: the same request may succeed elsewhere or later.
    retryable = True


__all__ = [
    "CompileError",
    "DrainingError",
    "ProtocolError",
    "ReproError",
    "SpecError",
    "StreamError",
    "ValidationError",
]
