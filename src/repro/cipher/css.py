"""CSS — the 40-bit Content Scramble System keystream (paper §1: the
"content scramble system used for digital right management which uses a
40-bit stream cipher").

Structure per Stevenson's published cryptanalysis: two LFSRs of 17 and 25
bits are seeded from the 5-byte key (with a forced 1 bit each so neither
register can be null), clocked 8 bits at a time, and their output *bytes*
are combined by 8-bit addition with carry propagation between bytes — the
only non-GF(2) ingredient, and the reason CSS does not fit the paper's
pure-XOR parallelization framework.  Mode flags optionally invert either
LFSR's output byte (the four published operating modes).

The exact historical tap sets were never formally published; this module
uses the primitive polynomials from Stevenson's analysis
(``x^17 + x^14 + 1`` and ``x^25 + x^12 + x^4 + x^3 + 1``), whose
primitivity — hence the maximal keystream period structure — is verified
by the test-suite with this library's own polynomial machinery.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.gf2.polynomial import GF2Polynomial

LFSR17_POLY = GF2Polynomial.from_exponents([17, 14, 0])
LFSR25_POLY = GF2Polynomial.from_exponents([25, 12, 4, 3, 0])

#: The four CSS operating modes: (invert lfsr17 byte, invert lfsr25 byte).
MODES: dict = {
    "data": (True, False),
    "key": (False, False),
    "title": (False, True),
    "challenge": (True, True),
}


class CSS:
    """40-bit CSS keystream generator."""

    def __init__(self, key: bytes, mode: str = "data"):
        if len(key) != 5:
            raise ValueError("CSS key must be exactly 5 bytes")
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {sorted(MODES)}")
        self._mode = mode
        self._inv17, self._inv25 = MODES[mode]
        # 17-bit register: key bytes 0-1 with a forced 1 wedged in at bit 8.
        self._r17 = key[0] | 0x100 | (key[1] << 9)
        # 25-bit register: key bytes 2-4 with a forced 1 wedged in at bit 3.
        raw = key[2] | (key[3] << 8) | (key[4] << 16)
        self._r25 = (raw & 0x7) | 0x8 | ((raw & 0xFFFFF8) << 1)
        self._carry = 0

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def registers(self) -> Tuple[int, int]:
        return self._r17, self._r25

    # ------------------------------------------------------------------
    @staticmethod
    def _clock(reg: int, poly: GF2Polynomial) -> Tuple[int, int]:
        """Galois-style clock; returns (new_register, output_bit)."""
        k = poly.degree
        out = (reg >> (k - 1)) & 1
        reg = (reg << 1) & ((1 << k) - 1)
        if out:
            reg ^= poly.coeffs & ((1 << k) - 1)
        return reg, out

    def _byte17(self) -> int:
        value = 0
        for i in range(8):
            self._r17, bit = self._clock(self._r17, LFSR17_POLY)
            value |= bit << i
        return value ^ (0xFF if self._inv17 else 0)

    def _byte25(self) -> int:
        value = 0
        for i in range(8):
            self._r25, bit = self._clock(self._r25, LFSR25_POLY)
            value |= bit << i
        return value ^ (0xFF if self._inv25 else 0)

    def keystream_bytes(self, nbytes: int) -> bytes:
        """Combine the two LFSR byte streams by add-with-carry."""
        out = bytearray()
        for _ in range(nbytes):
            total = self._byte17() + self._byte25() + self._carry
            self._carry = total >> 8
            out.append(total & 0xFF)
        return bytes(out)

    def keystream_bits(self, nbits: int) -> List[int]:
        data = self.keystream_bytes((nbits + 7) // 8)
        return [(data[i // 8] >> (i % 8)) & 1 for i in range(nbits)]

    def scramble(self, data: bytes) -> bytes:
        ks = self.keystream_bytes(len(data))
        return bytes(d ^ k for d, k in zip(data, ks))

    def descramble(self, data: bytes) -> bytes:
        """XOR keystream ciphers are involutions (fresh generator needed)."""
        return self.scramble(data)
