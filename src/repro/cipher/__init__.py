"""Stream ciphers from the paper's motivation section (§1).

* :class:`A51` — GSM A5/1 (majority-clocked triple LFSR), validated against
  the published reference test vector.
* :class:`E0` — Bluetooth summation combiner over four LFSRs.
* :class:`CSS` — the 40-bit Content Scramble System (two LFSRs combined by
  add-with-carry).

These exercise the LFSR substrate beyond the linear time-invariant systems
the PiCoGA mapping targets: A5/1's irregular clocking and E0's/CSS's
nonlinear combiners are exactly the features that break pure look-ahead
parallelization, which the library's documentation uses to delimit the
method's applicability.
"""

from repro.cipher.a51 import A51
from repro.cipher.css import CSS, LFSR17_POLY, LFSR25_POLY, MODES
from repro.cipher.e0 import E0, STATE_BITS

__all__ = ["A51", "CSS", "E0", "LFSR17_POLY", "LFSR25_POLY", "MODES", "STATE_BITS"]
