"""E0 — the Bluetooth baseband stream cipher (paper §1 motivation).

Four LFSRs of lengths 25, 31, 33 and 39 (128 state bits total) drive a
*summation combiner* with 4 bits of finite-state memory: the integer sum of
the four LFSR output bits, plus a two-step carry recursion, makes the
keystream a nonlinear function of the linear registers.  As with A5/1, the
nonlinearity breaks pure look-ahead parallelization — these ciphers are the
"flexibility" end of the paper's LFSR application spectrum.

Feedback polynomials (Bluetooth Core spec, Vol 2 Part H §4.1):

=====  =======  =====================================  ==========
LFSR   length   feedback polynomial                    output tap
1      25       t^25 + t^20 + t^12 + t^8  + 1          24
2      31       t^31 + t^24 + t^16 + t^12 + 1          24
3      33       t^33 + t^28 + t^24 + t^4  + 1          32
4      39       t^39 + t^36 + t^28 + t^4  + 1          32
=====  =======  =====================================  ==========

Combiner (spec notation)::

    y_t     = x1 + x2 + x3 + x4                     (integer, 0..4)
    s_{t+1} = floor((y_t + c_t) / 2)                (2 bits)
    z_t     = x1 ^ x2 ^ x3 ^ x4 ^ c_t[0]            (keystream bit)
    c_{t+1} = s_{t+1} ^ T1(c_t) ^ T2(c_{t-1})

with the linear bijections ``T1(a, b) = (a, b)`` and ``T2(a, b) = (b, a^b)``
on the 2-bit carry.  This module implements the keystream core with direct
register seeding; the two-level Kc payload-key schedule of the full
Bluetooth link layer is out of scope (the paper's interest is the
LFSR-plus-combiner datapath itself).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

# (length, feedback tap exponents, output tap index)
_LFSR_PARAMS: Tuple = (
    (25, (25, 20, 12, 8), 24),
    (31, (31, 24, 16, 12), 24),
    (33, (33, 28, 24, 4), 32),
    (39, (39, 36, 28, 4), 32),
)

STATE_BITS = sum(p[0] for p in _LFSR_PARAMS)  # 128


def _t1(c: int) -> int:
    """Identity bijection on the 2-bit carry."""
    return c & 0b11


def _t2(c: int) -> int:
    """(a, b) -> (b, a^b) on the 2-bit carry (a = MSB)."""
    a = (c >> 1) & 1
    b = c & 1
    return (b << 1) | (a ^ b)


class E0:
    """E0 keystream core with explicit register/carry seeding."""

    def __init__(self, registers: Sequence[int], carry: int = 0, carry_prev: int = 0):
        if len(registers) != 4:
            raise ValueError("E0 needs exactly four register values")
        self._regs: List[int] = []
        for value, (length, _, _) in zip(registers, _LFSR_PARAMS):
            if value >> length:
                raise ValueError(f"register value {value:#x} wider than {length} bits")
            if value == 0:
                raise ValueError("an all-zero LFSR never leaves the zero state")
            self._regs.append(value)
        if carry >> 2 or carry_prev >> 2:
            raise ValueError("carries are 2-bit values")
        self._c = carry
        self._c_prev = carry_prev

    @classmethod
    def from_seed(cls, seed: bytes) -> "E0":
        """Deterministically spread a 16-byte seed across the registers.

        This replaces the Bluetooth two-level key schedule with a direct
        fill (any zero register is patched with a 1 in its top bit).
        """
        if len(seed) != 16:
            raise ValueError("seed must be 16 bytes (128 bits)")
        bits = int.from_bytes(seed, "little")
        regs = []
        offset = 0
        for length, _, _ in _LFSR_PARAMS:
            value = (bits >> offset) & ((1 << length) - 1)
            offset += length
            regs.append(value or (1 << (length - 1)))
        return cls(regs)

    # ------------------------------------------------------------------
    @property
    def registers(self) -> List[int]:
        return list(self._regs)

    @property
    def carry(self) -> int:
        return self._c

    def _clock_lfsr(self, index: int) -> int:
        """Advance one register; return its output-tap bit (pre-shift)."""
        length, taps, out_tap = _LFSR_PARAMS[index]
        reg = self._regs[index]
        out = (reg >> out_tap) & 1
        # Feedback per polynomial: new bit = XOR of bits at length - t for
        # every tap exponent t (the t = length term reads bit 0).
        fb = 0
        for t in taps:
            fb ^= (reg >> (length - t)) & 1
        self._regs[index] = (reg >> 1) | (fb << (length - 1))
        return out

    def clock(self) -> int:
        """One combiner step; returns the keystream bit z_t."""
        xs = [self._clock_lfsr(i) for i in range(4)]
        y = sum(xs)
        z = (xs[0] ^ xs[1] ^ xs[2] ^ xs[3]) ^ (self._c & 1)
        s_next = (y + self._c) >> 1
        c_next = (s_next ^ _t1(self._c) ^ _t2(self._c_prev)) & 0b11
        self._c_prev = self._c
        self._c = c_next
        return z

    def keystream(self, nbits: int) -> List[int]:
        return [self.clock() for _ in range(nbits)]

    def keystream_bytes(self, nbytes: int) -> bytes:
        bits = self.keystream(8 * nbytes)
        out = bytearray(nbytes)
        for i, bit in enumerate(bits):
            out[i // 8] |= bit << (i % 8)
        return bytes(out)

    def encrypt(self, data: bytes) -> bytes:
        ks = self.keystream_bytes(len(data))
        return bytes(d ^ k for d, k in zip(data, ks))
