"""A5/1 — the GSM air-interface stream cipher (paper §1, stream-cipher
motivation).

Three short LFSRs (19, 22 and 23 bits) with *majority-rule irregular
clocking*: at each step, only the registers whose clocking bit agrees with
the majority advance.  The keystream bit is the XOR of the three MSB taps.
The irregular clocking is what makes A5/1 resist the pure look-ahead
parallelization used for CRCs/scramblers — the state update is no longer
linear time-invariant — which is why the paper treats ciphers as the
flexibility-hungry end of the LFSR application spectrum.

Implementation follows the Briceno/Goldberg/Wagner reference: the published
test vector (key ``0x1223456789ABCDEF``, frame ``0x134``) is locked in by
the test-suite.
"""

from __future__ import annotations

from typing import List

_R1_BITS, _R2_BITS, _R3_BITS = 19, 22, 23
_R1_MASK = (1 << _R1_BITS) - 1
_R2_MASK = (1 << _R2_BITS) - 1
_R3_MASK = (1 << _R3_BITS) - 1
# Feedback taps (bit indices) per the reference implementation.
_R1_TAPS = (18, 17, 16, 13)
_R2_TAPS = (21, 20)
_R3_TAPS = (22, 21, 20, 7)
# Clock-control bit of each register.
_R1_CLK, _R2_CLK, _R3_CLK = 8, 10, 10

KEY_BITS = 64
FRAME_BITS = 22
MIXING_CYCLES = 100
BURST_BITS = 114


def _parity_of(value: int, taps) -> int:
    bit = 0
    for t in taps:
        bit ^= (value >> t) & 1
    return bit


class A51:
    """A5/1 keystream generator."""

    def __init__(self, key: bytes, frame: int):
        """``key`` is the 8-byte session key Kc (byte 0 loaded first, bits
        LSB-first within each byte, per the GSM convention); ``frame`` is
        the 22-bit frame number."""
        if len(key) != 8:
            raise ValueError("key must be exactly 8 bytes")
        if frame >> FRAME_BITS:
            raise ValueError("frame number must fit in 22 bits")
        self._key = bytes(key)
        self._frame = frame
        self.r1 = 0
        self.r2 = 0
        self.r3 = 0
        self._setup()

    # ------------------------------------------------------------------
    def _clock_all(self, input_bit: int = 0) -> None:
        """Regular clocking (used during key/frame load), with the input
        bit XORed into each register's feedback."""
        self.r1 = ((self.r1 << 1) & _R1_MASK) | (_parity_of(self.r1, _R1_TAPS) ^ input_bit)
        self.r2 = ((self.r2 << 1) & _R2_MASK) | (_parity_of(self.r2, _R2_TAPS) ^ input_bit)
        self.r3 = ((self.r3 << 1) & _R3_MASK) | (_parity_of(self.r3, _R3_TAPS) ^ input_bit)

    def _majority(self) -> int:
        a = (self.r1 >> _R1_CLK) & 1
        b = (self.r2 >> _R2_CLK) & 1
        c = (self.r3 >> _R3_CLK) & 1
        return (a & b) | (a & c) | (b & c)

    def _clock_majority(self) -> None:
        """Irregular clocking: advance registers agreeing with the majority."""
        maj = self._majority()
        if ((self.r1 >> _R1_CLK) & 1) == maj:
            self.r1 = ((self.r1 << 1) & _R1_MASK) | _parity_of(self.r1, _R1_TAPS)
        if ((self.r2 >> _R2_CLK) & 1) == maj:
            self.r2 = ((self.r2 << 1) & _R2_MASK) | _parity_of(self.r2, _R2_TAPS)
        if ((self.r3 >> _R3_CLK) & 1) == maj:
            self.r3 = ((self.r3 << 1) & _R3_MASK) | _parity_of(self.r3, _R3_TAPS)

    def _setup(self) -> None:
        # 64 key bits: byte 0 first, LSB-first within each byte.
        for i in range(KEY_BITS):
            self._clock_all((self._key[i // 8] >> (i % 8)) & 1)
        # 22 frame bits, LSB first.
        for i in range(FRAME_BITS):
            self._clock_all((self._frame >> i) & 1)
        # 100 mixing cycles with majority clocking, output discarded.
        for _ in range(MIXING_CYCLES):
            self._clock_majority()

    # ------------------------------------------------------------------
    def _output_bit(self) -> int:
        return (
            ((self.r1 >> (_R1_BITS - 1)) & 1)
            ^ ((self.r2 >> (_R2_BITS - 1)) & 1)
            ^ ((self.r3 >> (_R3_BITS - 1)) & 1)
        )

    def keystream(self, nbits: int) -> List[int]:
        out = []
        for _ in range(nbits):
            self._clock_majority()
            out.append(self._output_bit())
        return out

    def burst_pair(self) -> tuple:
        """The 114-bit downlink and 114-bit uplink keystreams of one frame,
        packed MSB-first into 15-byte blocks (reference-code format)."""
        down = self.keystream(BURST_BITS)
        up = self.keystream(BURST_BITS)
        return _pack_burst(down), _pack_burst(up)


def _pack_burst(bits: List[int]) -> bytes:
    """114 bits -> 15 bytes, MSB-first, zero-padded (reference format)."""
    out = bytearray(15)
    for i, bit in enumerate(bits):
        out[i // 8] |= (bit & 1) << (7 - (i % 8))
    return bytes(out)
