"""The differential fuzz driver.

:func:`run_fuzz` draws cases from a seeded :class:`CaseGenerator`, runs
every applicable oracle over each case, shrinks any failure to a minimal
reproducer, and returns a :class:`FuzzReport`.  The loop is budgeted by
wall-clock seconds and/or a case count; telemetry counters
(``verify_fuzz_cases_total`` / ``verify_fuzz_mismatches_total``, labelled
by oracle pair) let long soak runs be watched from the metrics registry.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Sequence

from repro.engine import CompileCache
from repro.telemetry import bind_families
from repro.verify.cases import CaseGenerator, FuzzCase, shrink
from repro.verify.oracles import Oracle, default_oracles
from repro.verify.report import FuzzReport, Mismatch

# Bound lazily (see repro.telemetry.bind_families) so swapping the
# default registry after import is observed.
_METRICS = bind_families(lambda reg: {
    "cases": reg.counter(
        "verify_fuzz_cases_total",
        "Differential fuzz cases checked, by oracle pair",
        labels=("pair",),
    ),
    "mismatches": reg.counter(
        "verify_fuzz_mismatches_total",
        "Differential fuzz mismatches confirmed, by oracle pair",
        labels=("pair",),
    ),
})

#: Default case budget when neither ``seconds`` nor ``max_cases`` is given.
DEFAULT_CASES = 200


def run_fuzz(
    seed: int = 0,
    seconds: Optional[float] = None,
    max_cases: Optional[int] = None,
    oracles: Optional[Sequence[Oracle]] = None,
    cache: Optional[CompileCache] = None,
    max_failures: int = 5,
    shrink_failures: bool = True,
    shrink_probes: int = 400,
) -> FuzzReport:
    """Run the cross-engine differential battery.

    ``seconds`` and ``max_cases`` are both budgets: the run stops when
    either is exhausted (with neither given, :data:`DEFAULT_CASES` cases
    are drawn).  ``max_failures`` stops the run early once that many
    distinct mismatches have been confirmed, so a systematically broken
    engine doesn't burn the whole budget re-finding the same bug.

    The same ``seed`` with the same ``max_cases`` replays the identical
    case sequence — a failure's report embeds exactly that pair.
    """
    battery = list(default_oracles() if oracles is None else oracles)
    artifacts = cache if cache is not None else CompileCache(capacity=256)
    generator = CaseGenerator(seed)
    if seconds is None and max_cases is None:
        max_cases = DEFAULT_CASES
    report = FuzzReport(seed=seed)
    for oracle in battery:
        report.pair_cases.setdefault(oracle.name, 0)
    start = perf_counter()
    while True:
        if max_cases is not None and report.cases >= max_cases:
            break
        if seconds is not None and perf_counter() - start >= seconds:
            break
        if len(report.mismatches) >= max_failures:
            break
        case = generator.draw()
        report.cases += 1
        for oracle in battery:
            if not oracle.applies(case):
                continue
            report.checks += 1
            report.pair_cases[oracle.name] += 1
            _METRICS()["cases"].labels(pair=oracle.name).inc()
            found = oracle.check(case, artifacts)
            if found is None:
                continue
            _METRICS()["mismatches"].labels(pair=oracle.name).inc()
            report.mismatches.append(
                _build_mismatch(
                    oracle,
                    case,
                    found,
                    artifacts,
                    shrink_failures,
                    shrink_probes,
                )
            )
            if len(report.mismatches) >= max_failures:
                break
    report.elapsed = perf_counter() - start
    return report


def _build_mismatch(
    oracle: Oracle,
    case: FuzzCase,
    found,
    cache: CompileCache,
    shrink_failures: bool,
    shrink_probes: int,
) -> Mismatch:
    shrunk, probes = case, 0
    detail, expected, got = found.detail, found.expected, found.got
    if shrink_failures:
        shrunk, probes = shrink(
            case,
            lambda c: oracle.check(c, cache) is not None,
            max_probes=shrink_probes,
        )
        final = oracle.check(shrunk, cache)
        if final is not None:
            detail, expected, got = final.detail, final.expected, final.got
    return Mismatch(
        oracle=oracle.name,
        case=case,
        shrunk=shrunk,
        detail=detail,
        expected=expected,
        got=got,
        probes=probes,
    )
