"""Differential oracles: one engine pair (or property) per oracle.

Each oracle takes a :class:`~repro.verify.cases.FuzzCase`, runs the same
inputs through a reference engine and a candidate engine, and returns
``None`` on agreement or a :class:`Discrepancy` naming the first
divergence.  Expensive engines (table builds, Derby transforms, batch
compiles) are memoized per oracle instance and share one
:class:`~repro.engine.cache.CompileCache`, so a long fuzz run amortizes
compilation exactly like the production pipelines do.

The reference side is always the bit-serial ground truth
(:class:`~repro.crc.bitwise.BitwiseCRC`, the serial scramblers), so a
reported mismatch indicts the parallel/batch/streaming candidate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crc import BitwiseCRC, DerbyCRC, TableCRC, get as get_crc
from repro.engine import (
    BatchAdditiveScrambler,
    BatchCRC,
    BatchMultiplicativeScrambler,
    CompileCache,
    CRCPipeline,
    ScramblerPipeline,
)
from repro.gf2.backend import get_backend
from repro.gf2.bits import bytes_to_bits
from repro.gf2.polynomial import GF2Polynomial
from repro.lfsr.galois import galois_to_fibonacci_state
from repro.lfsr.wordlfsr import (
    CURATED,
    WordLFSR,
    WordLFSRReference,
    seed_words_from_bytes,
)
from repro.scrambler import AdditiveScrambler
from repro.scrambler.galois import (
    FibonacciAdditiveScrambler,
    GaloisFormAdditiveScrambler,
    GaloisMultiplicativeScrambler,
)
from repro.scrambler.multiplicative import MultiplicativeScrambler
from repro.scrambler.specs import get as get_scrambler
from repro.verify.cases import (
    KIND_CRC,
    KIND_MULTIPLICATIVE,
    KIND_SCRAMBLER,
    FuzzCase,
)


@dataclass(frozen=True)
class Discrepancy:
    """The first divergence an oracle observed for a case."""

    detail: str
    expected: str
    got: str

    def to_dict(self) -> Dict[str, str]:
        return {"detail": self.detail, "expected": self.expected, "got": self.got}


class Oracle:
    """Base class: ``check`` returns None (agree) or a Discrepancy."""

    name: str = "oracle"
    kinds: Tuple[str, ...] = ()

    def applies(self, case: FuzzCase) -> bool:
        return case.kind in self.kinds

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        raise NotImplementedError


def _crc_serial(case: FuzzCase) -> Tuple:
    """(spec, BitwiseCRC) for a CRC case."""
    spec = get_crc(case.spec)
    return spec, BitwiseCRC(spec)


def _case_seed(case: FuzzCase, index: int, default: int) -> int:
    if case.seeds:
        return case.seeds[index]
    return default


class CRCTableOracle(Oracle):
    """BitwiseCRC vs the byte-at-a-time table engine, per message."""

    name = "crc:bitwise-vs-table"
    kinds = (KIND_CRC,)

    def __init__(self):
        self._tables: Dict[str, TableCRC] = {}

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        spec, serial = _crc_serial(case)
        table = self._tables.get(case.spec)
        if table is None:
            table = self._tables[case.spec] = TableCRC(spec)
        for i, payload in enumerate(case.payloads()):
            expected = serial.compute(payload)
            got = table.compute(payload)
            if got != expected:
                return Discrepancy(
                    detail=f"stream {i} ({len(payload)} bytes)",
                    expected=f"0x{expected:X}",
                    got=f"0x{got:X}",
                )
        return None


class CRCDerbyOracle(Oracle):
    """BitwiseCRC vs the Derby-transformed matrix engine, with per-stream
    initial registers (seed/basis conversion is exactly where equivalent-
    looking parallel realizations diverge)."""

    name = "crc:bitwise-vs-derby"
    kinds = (KIND_CRC,)

    def __init__(self):
        self._engines: Dict[Tuple[str, int], DerbyCRC] = {}

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        spec, serial = _crc_serial(case)
        key = (case.spec, case.M)
        derby = self._engines.get(key)
        if derby is None:
            derby = self._engines[key] = DerbyCRC(spec, case.M)
        for i, payload in enumerate(case.payloads()):
            register = _case_seed(case, i, spec.init)
            expected = serial.raw_register(payload, register)
            got = derby.raw_register(payload, register)
            if got != expected:
                return Discrepancy(
                    detail=f"stream {i} raw register, init=0x{register:X}",
                    expected=f"0x{expected:X}",
                    got=f"0x{got:X}",
                )
        return None


class CRCBatchOracle(Oracle):
    """BitwiseCRC vs the bit-sliced batch kernel (both byte and bit paths)."""

    name = "crc:bitwise-vs-batch"
    kinds = (KIND_CRC,)

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        spec, serial = _crc_serial(case)
        engine = BatchCRC(spec, case.M, method=case.method, cache=cache)
        payloads = case.payloads()
        expected = [serial.compute(m) for m in payloads]
        got = engine.compute_batch(payloads)
        if got != expected:
            i = next(j for j, (a, b) in enumerate(zip(expected, got)) if a != b)
            return Discrepancy(
                detail=f"compute_batch stream {i} ({len(payloads[i])} bytes, "
                f"method={case.method})",
                expected=f"0x{expected[i]:X}",
                got=f"0x{got[i]:X}",
            )
        bit_streams = [spec.message_bits(m) for m in payloads]
        got_bits = engine.compute_bits_batch(bit_streams)
        if got_bits != expected:
            i = next(j for j, (a, b) in enumerate(zip(expected, got_bits)) if a != b)
            return Discrepancy(
                detail=f"compute_bits_batch stream {i} (method={case.method})",
                expected=f"0x{expected[i]:X}",
                got=f"0x{got_bits[i]:X}",
            )
        return None


class CRCPipelineOracle(Oracle):
    """BitwiseCRC vs the streaming pipeline under the case's chunk schedule,
    interleaved deliveries and ghost-stream aborts."""

    name = "crc:bitwise-vs-pipeline"
    kinds = (KIND_CRC,)

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        spec, serial = _crc_serial(case)
        pipe = CRCPipeline(spec, case.M, method=case.method, cache=cache)
        payloads = case.payloads()
        ids = []
        for i in range(len(payloads)):
            register = _case_seed(case, i, spec.init)
            ids.append(pipe.open(register=register))
        ghost_ids = []
        for nbits in case.aborts:
            gid = pipe.open()
            pipe.feed_bits(gid, [1] * nbits, pump=False)
            ghost_ids.append(gid)
        # Interleave chunk deliveries round-robin across streams; the
        # schedule is deterministic from the case so replays are exact.
        cursors = [(i, 0) for i in range(len(payloads)) if case.chunk_plan(i)]
        while cursors:
            nxt = []
            for i, chunk_idx in cursors:
                plan = case.chunk_plan(i)
                offset = sum(plan[:chunk_idx])
                pipe.feed(ids[i], payloads[i][offset : offset + plan[chunk_idx]])
                if chunk_idx + 1 < len(plan):
                    nxt.append((i, chunk_idx + 1))
            cursors = nxt
        for gid in ghost_ids:
            pipe.abort(gid)
        for i, payload in enumerate(payloads):
            register = _case_seed(case, i, spec.init)
            expected = spec.finalize(serial.raw_register(payload, register))
            got = pipe.finalize(ids[i])
            if got != expected:
                return Discrepancy(
                    detail=f"pipeline stream {i} chunks={case.chunk_plan(i)} "
                    f"method={case.method} aborts={case.aborts}",
                    expected=f"0x{expected:X}",
                    got=f"0x{got:X}",
                )
        return None


class AdditiveScramblerOracle(Oracle):
    """Serial AdditiveScrambler vs the batch kernel, plus the involution
    property (descramble(scramble(x)) == x)."""

    name = "scrambler:serial-vs-batch"
    kinds = (KIND_SCRAMBLER,)

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        spec = get_scrambler(case.spec)
        engine = BatchAdditiveScrambler(spec, case.M, cache=cache)
        streams = [bytes_to_bits(m, reflect=True) for m in case.payloads()]
        seeds = [
            _case_seed(case, i, spec.seed) for i in range(len(streams))
        ]
        expected = [
            AdditiveScrambler(spec, seed).scramble_bits(s)
            for s, seed in zip(streams, seeds)
        ]
        got = engine.scramble_batch(streams, seeds=seeds)
        if got != expected:
            i = next(j for j, (a, b) in enumerate(zip(expected, got)) if a != b)
            return Discrepancy(
                detail=f"scramble_batch stream {i} seed=0x{seeds[i]:X}",
                expected="".join(map(str, expected[i][:64])),
                got="".join(map(str, got[i][:64])),
            )
        back = engine.descramble_batch(got, seeds=seeds)
        if back != streams:
            i = next(j for j, (a, b) in enumerate(zip(streams, back)) if a != b)
            return Discrepancy(
                detail=f"involution violated on stream {i}",
                expected="".join(map(str, streams[i][:64])),
                got="".join(map(str, back[i][:64])),
            )
        return None


class ScramblerPipelineOracle(Oracle):
    """Serial AdditiveScrambler vs the streaming pipeline, chunked feeds."""

    name = "scrambler:serial-vs-pipeline"
    kinds = (KIND_SCRAMBLER,)

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        spec = get_scrambler(case.spec)
        pipe = ScramblerPipeline(spec, case.M, cache=cache)
        for i, payload in enumerate(case.payloads()):
            bits = bytes_to_bits(payload, reflect=True)
            seed = _case_seed(case, i, spec.seed)
            sid = pipe.open(seed=seed)
            out: List[int] = []
            offset = 0
            for nbytes in case.chunk_plan(i):
                out.extend(pipe.feed(sid, bits[offset : offset + 8 * nbytes]))
                offset += 8 * nbytes
            pipe.close(sid)
            expected = AdditiveScrambler(spec, seed).scramble_bits(bits)
            if out != expected:
                return Discrepancy(
                    detail=f"pipeline stream {i} seed=0x{seed:X} "
                    f"chunks={case.chunk_plan(i)}",
                    expected="".join(map(str, expected[:64])),
                    got="".join(map(str, out[:64])),
                )
        return None


class MultiplicativeScramblerOracle(Oracle):
    """Serial MultiplicativeScrambler vs the word-parallel batch engine,
    plus the self-synchronizing descramble round-trip."""

    name = "multiplicative:serial-vs-batch"
    kinds = (KIND_MULTIPLICATIVE,)

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        poly = GF2Polynomial.from_exponents(list(case.mult_exponents()))
        engine = BatchMultiplicativeScrambler(poly)
        streams = [bytes_to_bits(m, reflect=True) for m in case.payloads()]
        states = [_case_seed(case, i, 0) for i in range(len(streams))]
        expected = [
            MultiplicativeScrambler(poly, state=st).scramble_bits(s)
            for s, st in zip(streams, states)
        ]
        got = engine.scramble_batch(streams, states=states)
        if got != expected:
            i = next(j for j, (a, b) in enumerate(zip(expected, got)) if a != b)
            return Discrepancy(
                detail=f"scramble_batch stream {i} state=0x{states[i]:X}",
                expected="".join(map(str, expected[i][:64])),
                got="".join(map(str, got[i][:64])),
            )
        back = engine.descramble_batch(got, states=states)
        if back != streams:
            i = next(j for j, (a, b) in enumerate(zip(streams, back)) if a != b)
            return Discrepancy(
                detail=f"descramble round-trip violated on stream {i}",
                expected="".join(map(str, streams[i][:64])),
                got="".join(map(str, back[i][:64])),
            )
        return None


class PackedBackendOracle(Oracle):
    """Reference vs packed GF(2) backend on the raw kernel operations and
    on the full batch CRC engine.

    The other oracles pit parallel engines against the bit-serial ground
    truth under whatever backend is the process default; this one pins the
    two backends against *each other* on the same look-ahead matrices and
    payload-derived bit blocks, so a word-packing bug is indicted directly
    rather than through an engine mismatch.
    """

    name = "gf2:reference-vs-packed"
    kinds = (KIND_CRC,)

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        import numpy as np

        spec = get_crc(case.spec)
        ref = get_backend("reference")
        packed = get_backend("packed")
        la = cache.lookahead(spec, case.M)
        A = la.A_M.to_array()
        B = la.B_M.to_array()

        # Bit material derived deterministically from the case payloads.
        payloads = case.payloads()
        bits = [spec.message_bits(m) for m in payloads]
        pool = [b for stream in bits for b in stream]
        k = A.shape[0]
        vec = np.array([(pool[i % len(pool)] if pool else 0) for i in range(k)], dtype=np.uint8)

        got = packed.matvec(A, vec)
        expected = ref.matvec(A, vec)
        if got.tolist() != expected.tolist():
            return Discrepancy(
                detail=f"matvec A^{case.M} ({case.spec})",
                expected="".join(map(str, expected.tolist())),
                got="".join(map(str, got.tolist())),
            )
        got_m = packed.matmul(A, A)
        exp_m = ref.matmul(A, A)
        if got_m.tolist() != exp_m.tolist():
            return Discrepancy(
                detail=f"matmul A^{case.M} @ A^{case.M} ({case.spec})",
                expected=f"{exp_m.sum()} ones",
                got=f"{got_m.sum()} ones",
            )
        got_p = packed.matpow(A, 3)
        exp_p = ref.matpow(A, 3)
        if got_p.tolist() != exp_p.tolist():
            return Discrepancy(
                detail=f"matpow (A^{case.M})^3 ({case.spec})",
                expected=f"{exp_p.sum()} ones",
                got=f"{got_p.sum()} ones",
            )

        # Batched block kernel on a (M, batch) block cut from the payloads.
        batch = max(1, len(payloads))
        block = np.array(
            [
                [(pool[(r * batch + c) % len(pool)] if pool else 0) for c in range(batch)]
                for r in range(B.shape[1])
            ],
            dtype=np.uint8,
        )
        got_b = packed.unpack(packed.matvec_batch(B, packed.pack(block)), batch)
        exp_b = ref.unpack(ref.matvec_batch(B, ref.pack(block)), batch)
        if got_b.tolist() != exp_b.tolist():
            return Discrepancy(
                detail=f"matvec_batch B_M block ({case.spec}, M={case.M}, B={batch})",
                expected=f"{int(exp_b.sum())} ones",
                got=f"{int(got_b.sum())} ones",
            )

        # Full engine: the same batch CRC under both backends.
        exp_crcs = BatchCRC(spec, case.M, method=case.method, cache=cache,
                            backend="reference").compute_batch(payloads)
        got_crcs = BatchCRC(spec, case.M, method=case.method, cache=cache,
                            backend="packed").compute_batch(payloads)
        if got_crcs != exp_crcs:
            i = next(j for j, (a, b) in enumerate(zip(exp_crcs, got_crcs)) if a != b)
            return Discrepancy(
                detail=f"BatchCRC backend pair stream {i} (method={case.method})",
                expected=f"0x{exp_crcs[i]:X}",
                got=f"0x{got_crcs[i]:X}",
            )
        return None


class ParallelWorkersOracle(Oracle):
    """Serial (workers=1) vs sharded (workers=N) execution, bit-exact.

    Sharding must be invisible: any partition of a batch across workers,
    any time-axis split of a single message (recombined through
    ``x^k mod G``), and any shard assignment of pipeline streams — under
    chunked delivery and mid-stream aborts — must reproduce the serial
    result exactly.  The oracle drives all three decompositions with the
    case's own payloads and chunk schedule, so shard boundaries land on
    arbitrary (non-multiple-of-shard) lengths by construction.
    """

    name = "parallel:workers1-vs-workersN"
    kinds = (KIND_CRC,)

    #: Shard count for the candidate side; 3 guarantees uneven splits for
    #: most batch sizes and exercises the scheduler's tiebreak paths.
    WORKERS = 3

    def __init__(self):
        self._engines: Dict[Tuple[str, int, str], "ParallelBatchCRC"] = {}

    def _engine(self, case: FuzzCase, cache: CompileCache) -> "ParallelBatchCRC":
        from repro.engine import ParallelBatchCRC

        key = (case.spec, case.M, case.method)
        engine = self._engines.get(key)
        if engine is None:
            engine = self._engines[key] = ParallelBatchCRC(
                get_crc(case.spec),
                case.M,
                method=case.method,
                workers=self.WORKERS,
                cache=cache,
                mode="thread",
                min_shard_bits=1,
            )
        return engine

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        from repro.engine import ShardedCRCPipeline

        spec, serial_ref = _crc_serial(case)
        engine = self._engine(case, cache)
        serial = BatchCRC(spec, case.M, method=case.method, cache=cache)
        payloads = case.payloads()

        # 1. Batch-dimension sharding: byte and bit front doors.
        expected = serial.compute_batch(payloads)
        got = engine.compute_batch(payloads)
        if got != expected:
            i = next(j for j, (a, b) in enumerate(zip(expected, got)) if a != b)
            return Discrepancy(
                detail=f"sharded compute_batch stream {i} "
                f"({len(payloads[i])} bytes, workers={self.WORKERS})",
                expected=f"0x{expected[i]:X}",
                got=f"0x{got[i]:X}",
            )
        bit_streams = [spec.message_bits(m) for m in payloads]
        got_bits = engine.compute_bits_batch(bit_streams)
        if got_bits != expected:
            i = next(j for j, (a, b) in enumerate(zip(expected, got_bits)) if a != b)
            return Discrepancy(
                detail=f"sharded compute_bits_batch stream {i} "
                f"(workers={self.WORKERS})",
                expected=f"0x{expected[i]:X}",
                got=f"0x{got_bits[i]:X}",
            )

        # 2. Time-axis sharding: one long message split across workers and
        # recombined with x^k mod G.  Concatenating the payloads makes its
        # length arbitrary relative to both M and the shard count.
        joined = b"".join(payloads)
        expected_one = serial_ref.compute(joined)
        got_one = engine.compute(joined)
        if got_one != expected_one:
            return Discrepancy(
                detail=f"time-sharded compute ({8 * len(joined)} bits, "
                f"workers={self.WORKERS})",
                expected=f"0x{expected_one:X}",
                got=f"0x{got_one:X}",
            )

        # 3. Sharded pipeline under the case's chunk schedule with ghost
        # streams aborted mid-flight (they must leave no residue on any
        # shard they were scheduled to or stolen by).
        pipe = ShardedCRCPipeline(
            spec, case.M, method=case.method, workers=self.WORKERS, cache=cache
        )
        try:
            ids = [pipe.open() for _ in payloads]
            ghost_ids = []
            for nbits in case.aborts:
                gid = pipe.open()
                pipe.feed_bits(gid, [1] * nbits, pump=False)
                ghost_ids.append(gid)
            cursors = [(i, 0) for i in range(len(payloads)) if case.chunk_plan(i)]
            while cursors:
                nxt = []
                for i, chunk_idx in cursors:
                    plan = case.chunk_plan(i)
                    offset = sum(plan[:chunk_idx])
                    pipe.feed(ids[i], payloads[i][offset : offset + plan[chunk_idx]])
                    if chunk_idx + 1 < len(plan):
                        nxt.append((i, chunk_idx + 1))
                cursors = nxt
            for gid in ghost_ids:
                pipe.abort(gid)
            for i, payload in enumerate(payloads):
                want = serial_ref.compute(payload)
                have = pipe.finalize(ids[i])
                if have != want:
                    return Discrepancy(
                        detail=f"sharded pipeline stream {i} "
                        f"chunks={case.chunk_plan(i)} aborts={case.aborts} "
                        f"(workers={self.WORKERS})",
                        expected=f"0x{want:X}",
                        got=f"0x{have:X}",
                    )
        finally:
            pipe.close()
        return None


class PlannerAutoOracle(Oracle):
    """Planner-chosen execution vs serial ground truth, bit-exact.

    The adaptive planner decides backend x workers x M from a cost model
    — this oracle checks that *whatever* it decides, the planned engine
    is still bit-exact.  Each case is turned into a workload descriptor
    (the case's own batch shape and payload sizes, M pinned so compiles
    are shared) and planned against a synthetic host profile drawn
    deterministically from the case — so across a fuzz run the decision
    space (serial fallback, thread sharding, wide/narrow ladders) is
    covered without ever timing anything.  The planned configuration
    then executes with a thread pool (substrate doesn't affect results,
    and process pools would blow the fuzz budget) and must reproduce the
    serial batch result and the bit-serial single-message CRC exactly.
    """

    name = "planner:auto-vs-serial"
    kinds = (KIND_CRC,)

    #: Synthetic hosts the cases cycle through: a 1-CPU laptop (always
    #: plans serial), a 4-core desktop, and a 16-core server with a
    #: cheap pool (plans wide).  Built lazily to keep import light.
    PROFILE_CPUS = (1, 4, 16)

    def __init__(self):
        self._planners: Dict[int, object] = {}
        self._engines: Dict[Tuple, "ParallelBatchCRC"] = {}

    def _planner(self, cpus: int):
        from repro.engine.planner import HostProfile, Planner

        planner = self._planners.get(cpus)
        if planner is None:
            profile = HostProfile.synthetic(
                cpus=cpus,
                fingerprint=f"fuzz-{cpus}cpu",
                thread_spawn_s=1e-5,
                thread_dispatch_s=1e-6,
            )
            planner = self._planners[cpus] = Planner(
                profile=profile, min_shard_bits=1
            )
        return planner

    def _plan(self, case: FuzzCase):
        from repro.engine.planner import WorkloadDescriptor

        payloads = case.payloads()
        total_bits = sum(8 * len(m) for m in payloads)
        workload = WorkloadDescriptor(
            kind="crc-batch",
            standard=case.spec,
            message_bits=max(1, total_bits // max(len(payloads), 1)),
            batch=len(payloads),
            M=case.M,
        )
        cpus = self.PROFILE_CPUS[
            (case.M + len(payloads) + total_bits) % len(self.PROFILE_CPUS)
        ]
        return self._planner(cpus).plan(workload)

    def _engine(
        self, case: FuzzCase, plan, cache: CompileCache
    ) -> "ParallelBatchCRC":
        from repro.engine import ParallelBatchCRC

        key = (case.spec, case.M, case.method, plan.workers)
        engine = self._engines.get(key)
        if engine is None:
            engine = self._engines[key] = ParallelBatchCRC(
                get_crc(case.spec),
                case.M,
                method=case.method,
                cache=cache,
                mode="thread",
                min_shard_bits=1,
                plan=plan,
            )
        return engine

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        spec, serial_ref = _crc_serial(case)
        plan = self._plan(case)
        engine = self._engine(case, plan, cache)
        serial = BatchCRC(spec, case.M, method=case.method, cache=cache)
        payloads = case.payloads()

        expected = serial.compute_batch(payloads)
        got = engine.compute_batch(payloads)
        if got != expected:
            i = next(j for j, (a, b) in enumerate(zip(expected, got)) if a != b)
            return Discrepancy(
                detail=f"planned compute_batch stream {i} "
                f"({plan.strategy}, workers={plan.workers})",
                expected=f"0x{expected[i]:X}",
                got=f"0x{got[i]:X}",
            )

        # Single-message path under the same plan (time-sharded when the
        # planner went parallel), against the bit-serial ground truth.
        joined = b"".join(payloads)
        expected_one = serial_ref.compute(joined)
        got_one = engine.compute(joined)
        if got_one != expected_one:
            return Discrepancy(
                detail=f"planned compute ({8 * len(joined)} bits, "
                f"{plan.strategy}, workers={plan.workers})",
                expected=f"0x{expected_one:X}",
                got=f"0x{got_one:X}",
            )
        return None


class GaloisFormOracle(Oracle):
    """Fibonacci reference vs Dubrova's Galois-form scramblers.

    For additive cases the many-to-one standards-diagram register
    (:class:`FibonacciAdditiveScrambler`) is pitted against the
    shallow-feedback :class:`GaloisFormAdditiveScrambler` with the same
    seed — any error in the matching-initial-state solve (the
    observability-matrix algebra in :mod:`repro.lfsr.galois`) shows up as
    a first-bit divergence.  The state conversion is also round-tripped
    exactly.  For multiplicative cases the serial delay-line scrambler is
    checked against :class:`GaloisMultiplicativeScrambler` on the same
    stream, including the self-synchronizing descramble round trip.
    """

    name = "galois:fibonacci-vs-galois"
    kinds = (KIND_SCRAMBLER, KIND_MULTIPLICATIVE)

    def _check_additive(self, case: FuzzCase) -> Optional[Discrepancy]:
        spec = get_scrambler(case.spec)
        for i, payload in enumerate(case.payloads()):
            bits = bytes_to_bits(payload, reflect=True)
            seed = _case_seed(case, i, spec.seed)
            galois = GaloisFormAdditiveScrambler(spec, seed)
            back = galois_to_fibonacci_state(
                spec.poly.reciprocal(), galois.galois_seed
            )
            if back != seed:
                return Discrepancy(
                    detail=f"matching-state round trip, stream {i}",
                    expected=f"0x{seed:X}",
                    got=f"0x{back:X}",
                )
            expected = FibonacciAdditiveScrambler(spec, seed).scramble_bits(bits)
            got = galois.scramble_bits(bits)
            if got != expected:
                return Discrepancy(
                    detail=f"galois-form scramble, stream {i} seed=0x{seed:X}",
                    expected="".join(map(str, expected[:64])),
                    got="".join(map(str, got[:64])),
                )
        return None

    def _check_multiplicative(self, case: FuzzCase) -> Optional[Discrepancy]:
        poly = GF2Polynomial.from_exponents(list(case.mult_exponents()))
        for i, payload in enumerate(case.payloads()):
            bits = bytes_to_bits(payload, reflect=True)
            state = _case_seed(case, i, 0)
            expected = MultiplicativeScrambler(poly, state=state).scramble_bits(bits)
            got = GaloisMultiplicativeScrambler(poly, state=state).scramble_bits(bits)
            if got != expected:
                return Discrepancy(
                    detail=f"galois-form mult scramble, stream {i} state=0x{state:X}",
                    expected="".join(map(str, expected[:64])),
                    got="".join(map(str, got[:64])),
                )
            back = GaloisMultiplicativeScrambler(poly, state=state).descramble_bits(got)
            if back != bits:
                return Discrepancy(
                    detail=f"galois-form mult round trip, stream {i}",
                    expected="".join(map(str, bits[:64])),
                    got="".join(map(str, back[:64])),
                )
        return None

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        if case.kind == KIND_MULTIPLICATIVE:
            return self._check_multiplicative(case)
        return self._check_additive(case)


class WordLFSROracle(Oracle):
    """Fast word-oriented σ-LFSR vs its bit-serial state-matrix oracle.

    The case's payload bytes pick the curated spec and seed the register
    (through :func:`~repro.lfsr.wordlfsr.seed_words_from_bytes`), then the
    pure-integer :class:`WordLFSR` hot loop — including its specialized
    two-word path — must reproduce the :class:`WordLFSRReference`
    keystream byte-for-byte, and the word-keystream scramble must be an
    involution.
    """

    name = "word:wordlfsr-vs-reference"
    kinds = (KIND_SCRAMBLER,)

    def check(self, case: FuzzCase, cache: CompileCache) -> Optional[Discrepancy]:
        payloads = case.payloads()
        material = (payloads[0] if payloads else b"") or b"\x01"
        total = sum(len(p) for p in payloads)
        wspec = CURATED[(case.M + total) % len(CURATED)]
        seed = seed_words_from_bytes(wspec, material)
        nbytes = max(8, min(48, total))
        expected = WordLFSRReference(wspec, seed).keystream_bytes(nbytes)
        got = WordLFSR(wspec, seed).keystream_bytes(nbytes)
        if got != expected:
            return Discrepancy(
                detail=f"{wspec.name} keystream ({nbytes} bytes)",
                expected=expected.hex(),
                got=got.hex(),
            )
        ks = WordLFSR(wspec, seed).keystream_bytes(nbytes)
        scrambled = bytes(a ^ b for a, b in zip(expected, ks))
        if any(scrambled):
            # Keystream XOR keystream must cancel — a cheap involution
            # check that the engine restarts deterministically from seed.
            return Discrepancy(
                detail=f"{wspec.name} keystream not frame-deterministic",
                expected="00" * nbytes,
                got=scrambled.hex(),
            )
        return None


def default_oracles() -> List[Oracle]:
    """The standing cross-engine differential battery (12 oracle pairs)."""
    return [
        CRCTableOracle(),
        CRCDerbyOracle(),
        CRCBatchOracle(),
        CRCPipelineOracle(),
        AdditiveScramblerOracle(),
        ScramblerPipelineOracle(),
        MultiplicativeScramblerOracle(),
        PackedBackendOracle(),
        ParallelWorkersOracle(),
        PlannerAutoOracle(),
        GaloisFormOracle(),
        WordLFSROracle(),
    ]
