"""Machine-readable fuzz reports.

A :class:`FuzzReport` records everything needed to reproduce a run — the
generator seed, case/pair tallies — plus one :class:`Mismatch` record per
surviving failure, each carrying the original and the shrunken case so a
developer (or CI) can replay the minimal reproducer directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.verify.cases import FuzzCase

#: Bumped when the report schema changes incompatibly.
REPORT_VERSION = 1


@dataclass(frozen=True)
class Mismatch:
    """One confirmed engine disagreement, with its minimal reproducer."""

    oracle: str
    case: FuzzCase
    shrunk: FuzzCase
    detail: str
    expected: str
    got: str
    probes: int = 0

    def to_dict(self) -> Dict:
        return {
            "oracle": self.oracle,
            "case": self.case.to_dict(),
            "shrunk": self.shrunk.to_dict(),
            "detail": self.detail,
            "expected": self.expected,
            "got": self.got,
            "probes": self.probes,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Mismatch":
        try:
            return cls(
                oracle=str(data["oracle"]),
                case=FuzzCase.from_dict(data["case"]),
                shrunk=FuzzCase.from_dict(data["shrunk"]),
                detail=str(data.get("detail", "")),
                expected=str(data.get("expected", "")),
                got=str(data.get("got", "")),
                probes=int(data.get("probes", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed mismatch record: {exc}") from None


@dataclass
class FuzzReport:
    """Aggregate result of one differential fuzz run."""

    seed: int
    cases: int = 0
    checks: int = 0
    elapsed: float = 0.0
    pair_cases: Dict[str, int] = field(default_factory=dict)
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def pairs_exercised(self) -> int:
        return sum(1 for n in self.pair_cases.values() if n > 0)

    def repro_command(self) -> str:
        """CLI invocation that replays this run deterministically."""
        return f"repro fuzz --cases {self.cases} --seed {self.seed}"

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "version": REPORT_VERSION,
            "seed": self.seed,
            "cases": self.cases,
            "checks": self.checks,
            "elapsed": round(self.elapsed, 3),
            "ok": self.ok,
            "repro": self.repro_command(),
            "pair_cases": dict(sorted(self.pair_cases.items())),
            "mismatches": [m.to_dict() for m in self.mismatches],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzReport":
        try:
            version = int(data.get("version", REPORT_VERSION))
            if version != REPORT_VERSION:
                raise ValidationError(
                    f"unsupported fuzz report version {version} "
                    f"(this build reads version {REPORT_VERSION})"
                )
            return cls(
                seed=int(data["seed"]),
                cases=int(data.get("cases", 0)),
                checks=int(data.get("checks", 0)),
                elapsed=float(data.get("elapsed", 0.0)),
                pair_cases={
                    str(k): int(v) for k, v in data.get("pair_cases", {}).items()
                },
                mismatches=[
                    Mismatch.from_dict(m) for m in data.get("mismatches", [])
                ],
            )
        except ValidationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed fuzz report: {exc}") from None

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FuzzReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"fuzz report is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FuzzReport":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # ------------------------------------------------------------------
    def summary_lines(self) -> List[str]:
        """Human-readable per-pair summary for the CLI."""
        lines = [
            f"fuzz: {self.cases} cases, {self.checks} checks, "
            f"{self.pairs_exercised} engine pairs, {self.elapsed:.1f}s"
        ]
        for pair, count in sorted(self.pair_cases.items()):
            lines.append(f"  {pair:<34} {count:>6} cases")
        if self.ok:
            lines.append("result: OK (no mismatches)")
        else:
            lines.append(f"result: {len(self.mismatches)} MISMATCH(ES)")
            for m in self.mismatches:
                lines.append(f"  [{m.oracle}] {m.detail}")
                lines.append(f"    expected {m.expected}  got {m.got}")
                lines.append(f"    minimal case: {m.shrunk.describe()}")
            lines.append(f"replay: {self.repro_command()}")
        return lines
