"""Differential fuzz cases: generation, serialization and shrinking.

A :class:`FuzzCase` is one randomly drawn scenario — a spec, a block
factor, an engine method, per-stream seeds, byte payloads and a chunk /
abort schedule — compact enough to serialize into a failure report and
replay bit-for-bit.  :class:`CaseGenerator` draws cases deterministically
from a ``random.Random`` seed, and :func:`shrink` greedily reduces a
failing case to a locally minimal one while a caller-supplied predicate
keeps failing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ValidationError

#: Case kinds, matching the oracle families in :mod:`repro.verify.oracles`.
KIND_CRC = "crc"
KIND_SCRAMBLER = "scrambler"
KIND_MULTIPLICATIVE = "multiplicative"
KINDS = (KIND_CRC, KIND_SCRAMBLER, KIND_MULTIPLICATIVE)

#: Default spec pools.  All CRC entries support the Derby transform at
#: every factor in ``DERBY_FACTORS`` (non-cyclic generators excluded).
CRC_POOL = (
    "CRC-8",
    "CRC-16/CCITT-FALSE",
    "CRC-16/ARC",
    "CRC-32",
    "CRC-32/MPEG-2",
    "CRC-32C",
)
SCRAMBLER_POOL = ("IEEE-802.16e", "DVB", "IEEE-802.11", "SONET", "PRBS9", "PRBS23")
#: Multiplicative scrambler generators, as exponent tuples.
MULT_POLY_POOL = ((7, 6, 0), (15, 14, 0), (23, 18, 0), (43, 0))

LOOKAHEAD_FACTORS = (2, 3, 4, 5, 8, 16, 32)
DERBY_FACTORS = (4, 8, 16, 32)
MAX_STREAMS = 6
MAX_BYTES = 40


@dataclass(frozen=True)
class FuzzCase:
    """One differential scenario, fully reproducible from its fields.

    ``seeds`` are per-stream register presets (CRC initial register,
    scrambler seed, or multiplicative delay-line state); an empty tuple
    means "use the spec default everywhere".  ``chunks`` gives the chunk
    sizes each stream's payload is split into for the streaming oracles;
    ``aborts`` lists ghost-stream payload bit-lengths that are opened,
    fed, and aborted mid-run to stress interleaving.
    """

    kind: str
    spec: str                            # catalog name, or "exp:7,6,0" for multiplicative
    M: int
    method: str                          # "lookahead" | "derby" for CRC, "" otherwise
    seeds: Tuple[int, ...]
    messages: Tuple[str, ...]            # hex-encoded byte payloads
    chunks: Tuple[Tuple[int, ...], ...]  # per-stream chunk byte counts
    aborts: Tuple[int, ...]

    # ------------------------------------------------------------------
    @property
    def batch(self) -> int:
        return len(self.messages)

    def payloads(self) -> List[bytes]:
        return [bytes.fromhex(m) for m in self.messages]

    def chunk_plan(self, index: int) -> Tuple[int, ...]:
        """Chunk byte counts for stream ``index`` (whole payload if unset)."""
        if index < len(self.chunks) and self.chunks[index]:
            return self.chunks[index]
        nbytes = len(self.messages[index]) // 2
        return (nbytes,) if nbytes else ()

    def mult_exponents(self) -> Tuple[int, ...]:
        if not self.spec.startswith("exp:"):
            raise ValidationError(f"case spec {self.spec!r} is not an exponent list")
        return tuple(int(e) for e in self.spec[4:].split(","))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "spec": self.spec,
            "M": self.M,
            "method": self.method,
            "seeds": list(self.seeds),
            "messages": list(self.messages),
            "chunks": [list(c) for c in self.chunks],
            "aborts": list(self.aborts),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzCase":
        try:
            return cls(
                kind=str(data["kind"]),
                spec=str(data["spec"]),
                M=int(data["M"]),
                method=str(data.get("method", "")),
                seeds=tuple(int(s) for s in data.get("seeds", ())),
                messages=tuple(str(m) for m in data["messages"]),
                chunks=tuple(tuple(int(n) for n in c) for c in data.get("chunks", ())),
                aborts=tuple(int(a) for a in data.get("aborts", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed fuzz case record: {exc}") from None

    def describe(self) -> str:
        sizes = ",".join(str(len(m) // 2) for m in self.messages)
        return (
            f"{self.kind} spec={self.spec} M={self.M}"
            + (f" method={self.method}" if self.method else "")
            + f" streams={self.batch} bytes=[{sizes}]"
        )


def _case_sort_key(case: FuzzCase) -> Tuple[int, int, int, int]:
    """Smaller is simpler: total bytes, streams, schedule complexity, M."""
    total = sum(len(m) for m in case.messages) // 2
    schedule = sum(len(c) for c in case.chunks) + len(case.aborts) + len(case.seeds)
    return (total, case.batch, schedule, case.M)


class CaseGenerator:
    """Deterministic random case factory.

    Two generators built from equal seeds draw identical case sequences —
    the property the CLI relies on for ``repro fuzz --seed S`` replay.
    """

    def __init__(
        self,
        seed: int = 0,
        kinds: Tuple[str, ...] = KINDS,
        crc_pool: Tuple[str, ...] = CRC_POOL,
        scrambler_pool: Tuple[str, ...] = SCRAMBLER_POOL,
    ):
        self._rng = random.Random(seed)
        self._kinds = tuple(kinds)
        self._crc_pool = tuple(crc_pool)
        self._scrambler_pool = tuple(scrambler_pool)

    # ------------------------------------------------------------------
    def _draw_payloads(self, rng: random.Random, batch: int) -> Tuple[str, ...]:
        payloads = []
        for _ in range(batch):
            shape = rng.random()
            if shape < 0.15:
                n = 0  # empty message
            elif shape < 0.45:
                n = rng.randint(1, 4)  # shorter than one M-bit block
            else:
                n = rng.randint(5, MAX_BYTES)  # spans several blocks
            payloads.append(bytes(rng.randrange(256) for _ in range(n)).hex())
        return tuple(payloads)

    def _draw_chunks(self, rng: random.Random, messages: Tuple[str, ...]) -> Tuple[Tuple[int, ...], ...]:
        plans = []
        for m in messages:
            nbytes = len(m) // 2
            cuts: List[int] = []
            remaining = nbytes
            while remaining > 0:
                step = min(remaining, rng.randint(1, 9))
                cuts.append(step)
                remaining -= step
            plans.append(tuple(cuts))
        return tuple(plans)

    def draw(self) -> FuzzCase:
        rng = self._rng
        kind = rng.choice(self._kinds)
        if kind == KIND_CRC:
            from repro.crc import get as get_crc

            spec_name = rng.choice(self._crc_pool)
            method = rng.choice(("lookahead", "derby"))
            factors = DERBY_FACTORS if method == "derby" else LOOKAHEAD_FACTORS
            M = rng.choice(factors)
            batch = rng.randint(1, MAX_STREAMS)
            messages = self._draw_payloads(rng, batch)
            spec = get_crc(spec_name)
            seeds: Tuple[int, ...] = ()
            if rng.random() < 0.4:
                seeds = tuple(rng.randrange(1 << spec.width) for _ in range(batch))
            return FuzzCase(
                kind=kind,
                spec=spec_name,
                M=M,
                method=method,
                seeds=seeds,
                messages=messages,
                chunks=self._draw_chunks(rng, messages),
                aborts=tuple(
                    rng.randint(0, 64) for _ in range(rng.randint(0, 2))
                ),
            )
        if kind == KIND_SCRAMBLER:
            from repro.scrambler.specs import get as get_scrambler

            spec_name = rng.choice(self._scrambler_pool)
            spec = get_scrambler(spec_name)
            M = rng.choice((2, 4, 8, 16, 32))
            batch = rng.randint(1, MAX_STREAMS)
            messages = self._draw_payloads(rng, batch)
            seeds = ()
            if rng.random() < 0.6:
                seeds = tuple(
                    rng.randrange(1, 1 << spec.degree) for _ in range(batch)
                )
            return FuzzCase(
                kind=kind,
                spec=spec_name,
                M=M,
                method="",
                seeds=seeds,
                messages=messages,
                chunks=self._draw_chunks(rng, messages),
                aborts=(),
            )
        # Multiplicative: bit-serial self-synchronizing scrambler.
        exps = rng.choice(MULT_POLY_POOL)
        degree = max(exps)
        batch = rng.randint(1, MAX_STREAMS)
        messages = self._draw_payloads(rng, batch)
        seeds = ()
        if rng.random() < 0.6:
            seeds = tuple(
                rng.randrange(1 << min(degree, 30)) for _ in range(batch)
            )
        return FuzzCase(
            kind=KIND_MULTIPLICATIVE,
            spec="exp:" + ",".join(str(e) for e in exps),
            M=1,
            method="",
            seeds=seeds,
            messages=messages,
            chunks=(),
            aborts=(),
        )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _shrink_candidates(case: FuzzCase) -> List[FuzzCase]:
    """Simpler variants of ``case``, most aggressive first."""
    out: List[FuzzCase] = []
    n = case.batch

    def slice_streams(keep: List[int]) -> FuzzCase:
        return replace(
            case,
            messages=tuple(case.messages[i] for i in keep),
            seeds=tuple(case.seeds[i] for i in keep) if case.seeds else (),
            chunks=tuple(case.chunks[i] for i in keep) if case.chunks else (),
        )

    if n > 1:
        for i in range(n):
            out.append(slice_streams([j for j in range(n) if j != i]))
    for i, m in enumerate(case.messages):
        nbytes = len(m) // 2
        if nbytes == 0:
            continue
        for cut in (nbytes // 2, nbytes - 1):
            if cut < nbytes:
                shorter = list(case.messages)
                shorter[i] = m[: 2 * cut]
                chunks = list(case.chunks) if case.chunks else []
                if i < len(chunks):
                    chunks[i] = (cut,) if cut else ()
                out.append(
                    replace(case, messages=tuple(shorter), chunks=tuple(chunks))
                )
    if case.seeds:
        out.append(replace(case, seeds=()))
    if case.aborts:
        out.append(replace(case, aborts=()))
    if any(len(c) > 1 for c in case.chunks):
        out.append(
            replace(
                case,
                chunks=tuple((len(m) // 2,) if m else () for m in case.messages),
            )
        )
    return out


def shrink(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    max_probes: int = 400,
) -> Tuple[FuzzCase, int]:
    """Greedily minimize ``case`` while ``still_fails`` keeps returning True.

    Returns ``(minimal_case, probes_used)``.  The predicate is never
    trusted to be cheap, so the probe budget bounds total work; the result
    is locally minimal with respect to the candidate moves (drop a stream,
    halve/truncate a payload, drop seeds/aborts, merge chunks).
    """
    probes = 0
    best = case
    improved = True
    while improved and probes < max_probes:
        improved = False
        for cand in sorted(_shrink_candidates(best), key=_case_sort_key):
            if probes >= max_probes:
                break
            probes += 1
            failed = False
            try:
                failed = still_fails(cand)
            except Exception:
                # A candidate that crashes an engine is a different bug;
                # don't let it hijack the shrink.
                failed = False
            if failed:
                best = cand
                improved = True
                break
    return best, probes
