"""repro.verify — cross-engine differential fuzzing and property oracles.

Every parallel realization in this library (table, Derby matrix, batch
bit-sliced, streaming pipeline) claims bit-exact agreement with the serial
reference engines.  This package turns that claim into a standing,
machine-checkable battery:

* :mod:`repro.verify.cases` — deterministic random scenario generation
  (spec × block factor × method × seeds × payloads × chunk/abort
  schedules) and greedy shrinking to a minimal reproducer.
* :mod:`repro.verify.oracles` — one differential oracle per engine pair,
  plus algebraic property checks (scrambler involution, multiplicative
  descramble round-trip).
* :mod:`repro.verify.fuzz` — the budgeted driver with telemetry counters.
* :mod:`repro.verify.report` — JSON-serializable failure reports carrying
  the exact replay seed and the shrunken case.

Run it from the CLI as ``repro fuzz --seconds 30 --seed 0``.
"""

from repro.verify.cases import CaseGenerator, FuzzCase, shrink
from repro.verify.fuzz import DEFAULT_CASES, run_fuzz
from repro.verify.oracles import Discrepancy, Oracle, default_oracles
from repro.verify.report import FuzzReport, Mismatch

__all__ = [
    "CaseGenerator",
    "DEFAULT_CASES",
    "Discrepancy",
    "FuzzCase",
    "FuzzReport",
    "Mismatch",
    "Oracle",
    "default_oracles",
    "run_fuzz",
    "shrink",
]
